"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import SetAssocCache


def make_cache(size=1024, assoc=2, line=32):
    return SetAssocCache(size, assoc, line, name="test")


class TestBasics:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)

    def test_same_line_hits(self):
        cache = make_cache(line=32)
        cache.access(0x1000)
        assert cache.access(0x101F)
        assert not cache.access(0x1020)

    def test_miss_without_allocate(self):
        cache = make_cache()
        assert not cache.access(0x1000, allocate=False)
        assert not cache.access(0x1000)  # still not resident

    def test_stats(self):
        cache = make_cache()
        cache.access(0x1000)
        cache.access(0x1000)
        cache.access(0x2000)
        assert cache.accesses == 3
        assert cache.misses == 2
        assert cache.miss_rate == pytest.approx(2 / 3)

    def test_miss_rate_empty(self):
        assert make_cache().miss_rate == 0.0

    def test_contains_is_non_destructive(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.contains(0x1000)
        assert not cache.contains(0x2000)
        assert cache.accesses == 1


class TestLRU:
    def test_lru_eviction(self):
        cache = make_cache(size=64, assoc=2, line=32)  # one set
        cache.access(0x0)
        cache.access(0x1000)
        cache.access(0x0)        # refresh 0x0
        cache.access(0x2000)     # evicts 0x1000
        assert cache.contains(0x0)
        assert not cache.contains(0x1000)
        assert cache.contains(0x2000)

    def test_associativity_bound(self):
        cache = make_cache(size=128, assoc=4, line=32)  # one 4-way set
        for i in range(4):
            cache.access(i * 0x1000)
        assert all(cache.contains(i * 0x1000) for i in range(4))
        cache.access(4 * 0x1000)
        assert not cache.contains(0)


class TestGeometry:
    def test_validation(self):
        with pytest.raises(ValueError):
            SetAssocCache(0, 2, 32)
        with pytest.raises(ValueError):
            SetAssocCache(1024, 2, 33)  # line not power of two
        with pytest.raises(ValueError):
            SetAssocCache(96, 4, 32)  # does not divide into sets

    def test_table1_l1_dimensions(self):
        l1 = SetAssocCache(32 * 1024, 4, 32, "L1D")
        assert l1.num_sets == 256

    def test_set_index_uses_ls_bits(self):
        """The partial-address pipeline needs 8 bits for the L1 set index
        (256 sets at 4-way, Table 1 sizes)."""
        l1 = SetAssocCache(32 * 1024, 4, 32, "L1D")
        assert l1.num_sets == 1 << 8
        assert l1.set_index(0x1000) == l1.set_index(0x1000 + 256 * 32)


class TestPrewarm:
    def test_prewarmed_region_hits(self):
        cache = make_cache(size=4096, assoc=4, line=32)
        cache.prewarm_region(0x10000, 2048)
        assert cache.contains(0x10000)
        assert cache.contains(0x10000 + 2047)

    def test_prewarm_oversized_region_keeps_tail(self):
        """One sequential pass over a region larger than the cache leaves
        the most recent lines resident."""
        cache = make_cache(size=1024, assoc=2, line=32)
        cache.prewarm_region(0x0, 8192)
        assert cache.contains(8192 - 32)
        assert not cache.contains(0x0)

    def test_prewarm_empty_region_noop(self):
        cache = make_cache()
        cache.prewarm_region(0x1000, 0)
        assert not cache.contains(0x1000)

    def test_prewarm_matches_sequential_walk(self):
        """Analytic prewarm must equal an actual line-by-line walk."""
        base, size = 0x4000, 4096
        analytic = make_cache(size=1024, assoc=2, line=32)
        walked = make_cache(size=1024, assoc=2, line=32)
        analytic.prewarm_region(base, size)
        for addr in range(base, base + size, 32):
            walked.access(addr)
        for addr in range(base, base + size, 32):
            assert analytic.contains(addr) == walked.contains(addr), hex(addr)

    @given(base=st.integers(min_value=0, max_value=1 << 20),
           size=st.integers(min_value=1, max_value=4096))
    @settings(max_examples=30, deadline=None)
    def test_prewarm_equivalence_property(self, base, size):
        analytic = make_cache(size=512, assoc=2, line=64)
        walked = make_cache(size=512, assoc=2, line=64)
        analytic.prewarm_region(base, size)
        for addr in range((base // 64) * 64, base + size, 64):
            walked.access(addr)
        for addr in range((base // 64) * 64, base + size, 64):
            assert analytic.contains(addr) == walked.contains(addr)
