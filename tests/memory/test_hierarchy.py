"""Tests for the banked memory hierarchy timing model."""

import pytest

from repro.memory.hierarchy import HierarchyConfig, HitLevel, MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy()


class TestBanks:
    def test_word_interleaving(self, hierarchy):
        assert hierarchy.bank_of(0x0) == 0
        assert hierarchy.bank_of(0x8) == 1
        assert hierarchy.bank_of(0x10) == 2
        assert hierarchy.bank_of(0x18) == 3
        assert hierarchy.bank_of(0x20) == 0

    def test_bank_conflict_serializes(self, hierarchy):
        first = hierarchy.reserve_bank(0x0, earliest=10)
        second = hierarchy.reserve_bank(0x20, earliest=10)  # same bank
        assert first == 10
        assert second == 11

    def test_different_banks_parallel(self, hierarchy):
        a = hierarchy.reserve_bank(0x0, earliest=10)
        b = hierarchy.reserve_bank(0x8, earliest=10)
        assert a == b == 10

    def test_bank_frees_after_cycle(self, hierarchy):
        hierarchy.reserve_bank(0x0, earliest=10)
        later = hierarchy.reserve_bank(0x0, earliest=50)
        assert later == 50


class TestLevels:
    def test_l1_hit(self, hierarchy):
        hierarchy.l1.access(0x1000)
        level, extra = hierarchy.lookup_levels(0x1000)
        assert level is HitLevel.L1
        assert extra == 0

    def test_l2_hit_costs_30(self, hierarchy):
        hierarchy.l2.access(0x1000)
        level, extra = hierarchy.lookup_levels(0x1000)
        assert level is HitLevel.L2
        assert extra == 30

    def test_memory_costs_330(self, hierarchy):
        level, extra = hierarchy.lookup_levels(0x999000)
        assert level is HitLevel.MEMORY
        assert extra == 330

    def test_miss_allocates_up_the_hierarchy(self, hierarchy):
        hierarchy.lookup_levels(0x5000)
        level, _ = hierarchy.lookup_levels(0x5000)
        assert level is HitLevel.L1


class TestStoreCommit:
    def test_store_uses_bank_and_allocates(self, hierarchy):
        done = hierarchy.store_commit(0x3000, earliest=5)
        assert done == 6
        assert hierarchy.l1.contains(0x3000)
        assert hierarchy.stores == 1

    def test_store_bank_conflict(self, hierarchy):
        hierarchy.store_commit(0x0, earliest=5)
        done = hierarchy.store_commit(0x20, earliest=5)
        assert done == 7


class TestConfig:
    def test_table1_defaults(self):
        cfg = HierarchyConfig()
        assert cfg.l1_size_bytes == 32 * 1024
        assert cfg.l1_assoc == 4
        assert cfg.l1_latency == 6
        assert cfg.l1_banks == 4
        assert cfg.l2_size_bytes == 8 * 1024 * 1024
        assert cfg.l2_assoc == 8
        assert cfg.l2_latency == 30
        assert cfg.mem_latency == 300
        assert cfg.tlb_entries == 128
        assert cfg.page_size == 8192

    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchyConfig(l1_banks=3)
        with pytest.raises(ValueError):
            HierarchyConfig(l1_latency=0)
