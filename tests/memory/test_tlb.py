"""Tests for the TLB model."""

import pytest

from repro.memory.tlb import TLB


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(entries=128, page_size=8192, miss_penalty=30)
        assert tlb.access(0x10000) == 30
        assert tlb.access(0x10000) == 0

    def test_same_page_hits(self):
        tlb = TLB(page_size=8192)
        tlb.access(0x10000)
        assert tlb.access(0x10000 + 8191) == 0
        assert tlb.access(0x10000 + 8192) > 0

    def test_capacity_and_lru(self):
        tlb = TLB(entries=4, page_size=8192, assoc=4, miss_penalty=30)
        for i in range(4):
            tlb.access(i * 8192)
        for i in range(4):
            assert tlb.access(i * 8192) == 0
        tlb.access(4 * 8192)  # evicts page 0 (LRU was refreshed in order)
        assert tlb.access(0) == 30

    def test_reach_is_1mb_at_table1_sizes(self):
        """128 entries x 8KB pages = 1 MB reach."""
        tlb = TLB(entries=128, page_size=8192)
        assert tlb.num_sets * tlb.assoc * tlb.page_size == 1 << 20

    def test_index_bits_for_partial_transfer(self):
        """Section 4: 4 TLB index bits at 128 entries, 8-way."""
        tlb = TLB(entries=128, page_size=8192, assoc=8)
        assert tlb.index_bits() == 4

    def test_miss_rate(self):
        tlb = TLB()
        tlb.access(0x0)
        tlb.access(0x0)
        assert tlb.miss_rate == pytest.approx(0.5)
        assert TLB().miss_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TLB(entries=0)
        with pytest.raises(ValueError):
            TLB(entries=100, assoc=8)
        with pytest.raises(ValueError):
            TLB(page_size=1000)
        with pytest.raises(ValueError):
            TLB(miss_penalty=-1)
