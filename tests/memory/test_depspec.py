"""Tests for memory-dependence speculation (predictor + LSQ behaviour)."""

import pytest

from repro.core.instruction import DynInstr
from repro.memory.depspec import MemoryDependencePredictor
from repro.memory.hierarchy import HitLevel, MemoryHierarchy
from repro.memory.lsq import LoadStoreQueue
from repro.memory.pipeline import CachePipeline
from repro.workloads.trace import InstructionRecord, OpClass


def load(seq, addr, pc=None):
    rec = InstructionRecord(pc=pc or (0x400000 + 4 * seq),
                            op=OpClass.LOAD, dest=5, srcs=(1,), addr=addr)
    return DynInstr(seq, rec)


def store(seq, addr):
    rec = InstructionRecord(pc=0x500000 + 4 * seq, op=OpClass.STORE,
                            srcs=(1, 2), addr=addr)
    return DynInstr(seq, rec)


class SpecHarness:
    def __init__(self):
        self.hierarchy = MemoryHierarchy()
        self.pipeline = CachePipeline(self.hierarchy)
        self.done = []
        self.violations = []
        self.predictor = MemoryDependencePredictor(64)
        self.lsq = LoadStoreQueue(
            self.pipeline, size=32, partial_enabled=False,
            load_done=lambda i, c, lvl: self.done.append((i.seq, c, lvl)),
            dependence_predictor=self.predictor,
            on_violation=lambda i, c: self.violations.append((i.seq, c)),
        )

    def warm(self, addr):
        self.hierarchy.l1.access(addr)
        self.hierarchy.tlb.access(addr)


class TestPredictor:
    def test_starts_independent(self):
        p = MemoryDependencePredictor(64)
        assert not p.predicts_dependence(0x400000)

    def test_one_violation_saturates(self):
        p = MemoryDependencePredictor(64)
        p.record_dependence(0x400000)
        assert p.predicts_dependence(0x400000)

    def test_independence_decays_slowly(self):
        p = MemoryDependencePredictor(64)
        p.record_dependence(0x400000)
        p.record_independent(0x400000)
        assert p.predicts_dependence(0x400000)  # 3 -> 2, still dependent
        p.record_independent(0x400000)
        assert not p.predicts_dependence(0x400000)

    def test_stats(self):
        p = MemoryDependencePredictor(64)
        p.record_dependence(0x400000)
        p.predicts_dependence(0x400000)
        p.predicts_dependence(0x400004)
        assert p.lookups == 2
        assert p.dependence_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryDependencePredictor(100)
        with pytest.raises(ValueError):
            MemoryDependencePredictor(64, threshold=0)


class TestSpeculativeLSQ:
    def test_load_skips_unresolved_older_store(self):
        """Predicted-independent load completes without waiting for the
        older store's address (baseline would stall)."""
        h = SpecHarness()
        h.warm(0x100)
        st = store(0, 0x900)
        ld = load(1, 0x100)
        h.lsq.allocate(st)
        h.lsq.allocate(ld)
        h.lsq.on_full_address(ld, 0x100, cycle=10)
        assert len(h.done) == 1  # did not wait for the store
        assert h.lsq.speculative_loads == 1

    def test_visible_dependence_still_forwards(self):
        """Speculation only skips *unresolved* stores; a known match
        forwards normally."""
        h = SpecHarness()
        st = store(0, 0x100)
        ld = load(1, 0x100)
        h.lsq.allocate(st)
        h.lsq.allocate(ld)
        h.lsq.on_full_address(st, 0x100, cycle=5)
        h.lsq.on_store_data(st, cycle=6)
        h.lsq.on_full_address(ld, 0x100, cycle=10)
        assert h.done[0][2] is HitLevel.FORWARD
        assert h.lsq.violations == 0

    def test_violation_detected_and_reported(self):
        h = SpecHarness()
        h.warm(0x100)
        st = store(0, 0x100)   # same address, resolves late
        ld = load(1, 0x100)
        h.lsq.allocate(st)
        h.lsq.allocate(ld)
        h.lsq.on_full_address(ld, 0x100, cycle=10)
        assert len(h.done) == 1  # speculated
        h.lsq.on_full_address(st, 0x100, cycle=30)
        assert h.lsq.violations == 1
        assert h.violations == [(1, 30)]
        # The predictor learned: the same static load now waits.
        assert h.predictor.predicts_dependence(ld.rec.pc)

    def test_trained_load_waits_next_time(self):
        h = SpecHarness()
        h.warm(0x100)
        h.predictor.record_dependence(0x400100)
        st = store(0, 0x900)
        ld = load(1, 0x100, pc=0x400100)
        h.lsq.allocate(st)
        h.lsq.allocate(ld)
        h.lsq.on_full_address(ld, 0x100, cycle=10)
        assert h.done == []  # waits for the store like the baseline
        h.lsq.on_full_address(st, 0x900, cycle=20)
        assert len(h.done) == 1

    def test_clean_speculation_trains_independent(self):
        h = SpecHarness()
        h.warm(0x100)
        h.predictor._table[h.predictor._index(0x400100)] = 1
        st = store(0, 0x900)
        ld = load(1, 0x100, pc=0x400100)
        h.lsq.allocate(st)
        h.lsq.allocate(ld)
        h.lsq.on_full_address(ld, 0x100, cycle=10)
        h.lsq.on_full_address(st, 0x900, cycle=20)
        h.lsq.release(ld)
        assert h.predictor._table[h.predictor._index(0x400100)] == 0

    def test_no_violation_for_different_address(self):
        h = SpecHarness()
        h.warm(0x100)
        st = store(0, 0x908)
        ld = load(1, 0x100)
        h.lsq.allocate(st)
        h.lsq.allocate(ld)
        h.lsq.on_full_address(ld, 0x100, cycle=10)
        h.lsq.on_full_address(st, 0x908, cycle=30)
        assert h.lsq.violations == 0


class TestProcessorIntegration:
    def _run(self, speculate):
        from repro.core.config import ProcessorConfig
        from repro.core.models import model
        from repro.core.simulation import build_processor
        cfg = ProcessorConfig(memory_dependence_speculation=speculate)
        cpu = build_processor(model("I").config, "gzip", config=cfg)
        stats = cpu.run(3000, warmup=800)
        return cpu, stats

    def test_off_by_default(self):
        from repro.core.models import model
        from repro.core.simulation import build_processor
        cpu = build_processor(model("I").config, "gzip")
        assert cpu.dependence_predictor is None

    def test_speculation_executes_loads_early(self):
        cpu, stats = self._run(True)
        assert cpu.lsq.speculative_loads > 0
        assert stats.committed >= 3000

    def test_speculation_rarely_violates(self):
        cpu, stats = self._run(True)
        assert stats.ordering_violations <= cpu.lsq.speculative_loads * 0.05

    def test_speculation_helps_or_is_neutral(self):
        _, base = self._run(False)
        _, spec = self._run(True)
        assert spec.ipc >= base.ipc * 0.97
