"""Shared fixtures: isolate every test from the ambient cache config.

CI runs the suite with ``REPRO_NO_CACHE=1`` (so the committed seed cache
cannot mask simulator regressions), while developers may have
``REPRO_CACHE_DIR`` pointing anywhere.  Tests that exercise the cache
layer construct their own ``ResultCache(tmp_path)`` and must see neither
setting, so both are cleared for every test; tests that *want* them set
them explicitly via ``monkeypatch``.
"""

import pytest


@pytest.fixture(autouse=True)
def _clean_cache_environment(monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
