"""Fixtures for the simlint test suite.

Every test builds a miniature repo under ``tmp_path`` (its own
``pyproject.toml`` marks the root, so relative paths and rule scoping
behave exactly as in the real tree) and lints it in-process.
"""

import textwrap

import pytest

from repro.analysis import lint_paths


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``files`` (rel-path -> source) and lint them.

    Returns the LintResult; findings carry paths relative to the tmp
    root, so ``src/repro/core/x.py`` scoping works as in the repo.
    """

    def run(files, select=None, baseline=None):
        (tmp_path / "pyproject.toml").write_text(
            "[project]\nname = 'fixture'\n"
        )
        tops = []
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
            top = tmp_path / rel.split("/")[0]
            if top not in tops:
                tops.append(top)
        return lint_paths(tops, baseline=baseline,
                          select=select, root=tmp_path)

    return run


@pytest.fixture
def codes_of():
    """Findings -> sorted (code, line) pairs, for compact asserts."""

    def extract(result):
        return sorted((f.code, f.line) for f in result.findings)

    return extract
