"""Incremental cache and parallel engine behavior.

The cache must be invisible except for speed: warm runs return the
same findings as cold runs, edits invalidate exactly the touched
file, and project-level findings (which depend on *every* file)
recompute whenever any input changes.  ``--jobs`` must likewise be a
pure speed knob.
"""

import textwrap

from repro.analysis import lint_paths
from repro.analysis.cache import CACHE_DIR_NAME

CROSS_MODULE_CLEAN = {
    "src/repro/core/streams.py": """\
        import random

        def make_stream(n):
            return random.Random(n)
        """,
    "src/repro/core/driver.py": """\
        from repro.core.streams import make_stream

        def run(plan):
            return make_stream(plan.seed)
        """,
}

SINGLE_FINDING = {
    "src/repro/core/a.py": """\
        import random

        def roll():
            return random.Random(42)
        """,
    "src/repro/core/b.py": """\
        def double(n):
            return n * 2
        """,
}


def build(tmp_path, files):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    tops = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        top = tmp_path / rel.split("/")[0]
        if top not in tops:
            tops.append(top)
    return tops


def run(tmp_path, tops, **kwargs):
    return lint_paths(tops, root=tmp_path, **kwargs)


def summary(result):
    return sorted((f.path, f.line, f.code) for f in result.findings)


class TestWarmCache:
    def test_warm_run_matches_cold_and_hits(self, tmp_path):
        tops = build(tmp_path, SINGLE_FINDING)
        cold = run(tmp_path, tops)
        assert cold.cache_misses == 2 and cold.cache_hits == 0
        assert not cold.project_cache_hit
        warm = run(tmp_path, tops)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert warm.project_cache_hit
        assert summary(warm) == summary(cold)
        assert [f.code for f in cold.findings] == ["SIM501"]

    def test_edit_invalidates_only_the_changed_file(self, tmp_path):
        tops = build(tmp_path, SINGLE_FINDING)
        run(tmp_path, tops)
        target = tmp_path / "src/repro/core/b.py"
        target.write_text(target.read_text() + "\n\nX = 1\n")
        warm = run(tmp_path, tops)
        assert warm.cache_hits == 1 and warm.cache_misses == 1
        assert not warm.project_cache_hit

    def test_dependency_edit_recomputes_project_findings(self, tmp_path):
        # streams.make_stream(n) is fine while driver feeds plan.seed;
        # editing *driver* must resurface the finding in *streams*.
        tops = build(tmp_path, CROSS_MODULE_CLEAN)
        clean = run(tmp_path, tops)
        assert clean.findings == []
        driver = tmp_path / "src/repro/core/driver.py"
        driver.write_text(textwrap.dedent("""\
            from repro.core.streams import make_stream

            def run():
                return make_stream(1234)
            """))
        warm = run(tmp_path, tops)
        assert [f.code for f in warm.findings] == ["SIM501"]
        assert warm.findings[0].path == "src/repro/core/streams.py"
        # The untouched file itself still came from cache.
        assert warm.cache_hits == 1

    def test_cache_is_select_independent(self, tmp_path):
        # All rules run on the cold pass, so a warm pass may narrow or
        # widen --select freely and still read pure cache.
        tops = build(tmp_path, SINGLE_FINDING)
        cold = run(tmp_path, tops, select={"SIM104"})
        assert cold.findings == []
        warm = run(tmp_path, tops, select={"SIM501"})
        assert warm.cache_hits == 2
        assert [f.code for f in warm.findings] == ["SIM501"]

    def test_no_cache_mode_writes_nothing(self, tmp_path):
        tops = build(tmp_path, SINGLE_FINDING)
        result = run(tmp_path, tops, use_cache=False)
        assert [f.code for f in result.findings] == ["SIM501"]
        assert not (tmp_path / CACHE_DIR_NAME).exists()

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        tops = build(tmp_path, SINGLE_FINDING)
        run(tmp_path, tops)
        cache_dir = tmp_path / CACHE_DIR_NAME
        entries = sorted(cache_dir.rglob("*.json"))
        assert entries
        for entry in entries:
            entry.write_text("{not json")
        warm = run(tmp_path, tops)
        assert [f.code for f in warm.findings] == ["SIM501"]
        assert warm.cache_hits == 0

    def test_custom_cache_dir_is_honored(self, tmp_path):
        tops = build(tmp_path, SINGLE_FINDING)
        elsewhere = tmp_path / "cachebox"
        run(tmp_path, tops, cache_dir=elsewhere)
        assert list(elsewhere.rglob("*.json"))
        assert not (tmp_path / CACHE_DIR_NAME).exists()
        warm = run(tmp_path, tops, cache_dir=elsewhere)
        assert warm.cache_hits == 2


class TestParallelJobs:
    def test_parallel_results_match_serial(self, tmp_path):
        files = dict(SINGLE_FINDING)
        files.update(CROSS_MODULE_CLEAN)
        files["src/repro/service/x.py"] = """\
            import time

            async def throttle(delay):
                time.sleep(delay)
            """
        tops = build(tmp_path, files)
        serial = run(tmp_path, tops, jobs=1, use_cache=False)
        parallel = run(tmp_path, tops, jobs=2, use_cache=False)
        assert summary(parallel) == summary(serial)
        assert parallel.jobs == 2
        codes = {f.code for f in serial.findings}
        assert {"SIM501", "SIM801"} <= codes

    def test_parallel_cold_run_populates_cache(self, tmp_path):
        tops = build(tmp_path, SINGLE_FINDING)
        cold = run(tmp_path, tops, jobs=2)
        assert cold.cache_misses == 2
        warm = run(tmp_path, tops, jobs=1)
        assert warm.cache_hits == 2
        assert summary(warm) == summary(cold)


class TestTimings:
    def test_phase_timings_are_recorded(self, tmp_path):
        tops = build(tmp_path, SINGLE_FINDING)
        result = run(tmp_path, tops)
        for phase in ("discover", "phase1", "project", "total"):
            assert phase in result.timings
            assert result.timings[phase] >= 0.0


class TestSuppressionErrorPseudoCode:
    def test_tokenize_failure_reports_sim002(self, tmp_path, monkeypatch):
        import tokenize

        from repro.analysis import context as context_mod

        def boom(readline):
            raise tokenize.TokenError("EOF in multi-line statement",
                                      (1, 0))

        monkeypatch.setattr(context_mod.tokenize, "generate_tokens",
                            boom)
        tops = build(tmp_path, {"src/repro/core/x.py": """\
            def fine():
                return 1
            """})
        result = run(tmp_path, tops, use_cache=False)
        assert [f.code for f in result.findings] == ["SIM002"]
        assert "TokenError" in result.findings[0].message

    def test_sim002_bypasses_select(self, tmp_path, monkeypatch):
        import tokenize

        from repro.analysis import context as context_mod

        monkeypatch.setattr(
            context_mod.tokenize, "generate_tokens",
            lambda readline: (_ for _ in ()).throw(
                tokenize.TokenError("boom", (1, 0))))
        tops = build(tmp_path, {"src/repro/core/x.py": "X = 1\n"})
        result = run(tmp_path, tops, select={"SIM104"},
                     use_cache=False)
        assert [f.code for f in result.findings] == ["SIM002"]
