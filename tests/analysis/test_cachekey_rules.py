"""SIM2xx: cache-key completeness.

This family exists because of a real bug class: a new plan field that
silently shares cache entries with plans that differ in it.  The last
test pins the invariant on the *actual* ExperimentPlan in the repo.
"""

from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

PLAN_TEMPLATE = """\
    import hashlib
    import json
    from dataclasses import dataclass

    CACHE_VERSION = 3


    @dataclass(frozen=True)
    class Plan:
        model: str
        benchmark: str
        seed: int = 0

        def cache_key(self):
            payload = json.dumps(
                [{key_fields}], sort_keys=True)
            return hashlib.sha256(payload.encode()).hexdigest()
"""


def plan_module(key_fields):
    return PLAN_TEMPLATE.format(key_fields=key_fields)


class TestSIM201FieldCompleteness:
    def test_complete_key_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": plan_module(
            "CACHE_VERSION, self.model, self.benchmark, self.seed"
        )}, select={"SIM201"})
        assert result.findings == []

    def test_missing_field_is_flagged_at_its_declaration(
            self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": plan_module(
            "CACHE_VERSION, self.model, self.benchmark"
        )}, select={"SIM201"})
        assert [f.code for f in result.findings] == ["SIM201"]
        finding = result.findings[0]
        assert "'seed'" in finding.message
        assert finding.line == 12  # the `seed: int = 0` line

    def test_asdict_serialization_counts_as_complete(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import hashlib
            import json
            from dataclasses import asdict, dataclass


            @dataclass(frozen=True)
            class Plan:
                model: str
                seed: int = 0

                def cache_key(self):
                    payload = json.dumps(asdict(self), sort_keys=True)
                    return hashlib.sha256(payload.encode()).hexdigest()
            """}, select={"SIM201"})
        assert result.findings == []

    def test_classvar_and_private_fields_are_ignored(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            from dataclasses import dataclass
            from typing import ClassVar


            @dataclass(frozen=True)
            class Plan:
                model: str
                SCHEMA: ClassVar[int] = 1
                _scratch: int = 0

                def cache_key(self):
                    return self.model
            """}, select={"SIM201"})
        assert result.findings == []

    def test_classes_without_cache_key_are_ignored(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Stats:
                hits: int
                misses: int
            """}, select={"SIM201"})
        assert result.findings == []


class TestSIM202CacheVersionPin:
    def test_key_without_version_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": plan_module(
            "self.model, self.benchmark, self.seed"
        )}, select={"SIM202"})
        assert [f.code for f in result.findings] == ["SIM202"]
        assert "CACHE_VERSION" in result.findings[0].message

    def test_module_without_version_is_ignored(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Plan:
                model: str

                def cache_key(self):
                    return self.model
            """}, select={"SIM202"})
        assert result.findings == []


class TestRealExperimentPlan:
    def test_repo_plan_cache_key_is_complete(self):
        """The actual ExperimentPlan must satisfy SIM201/SIM202.

        If this fails you added a plan field without extending
        cache_key() -- exactly the silent wrong-results bug simlint
        exists to stop.
        """
        runner = REPO_ROOT / "src" / "repro" / "harness" / "runner.py"
        result = lint_paths([runner], select={"SIM201", "SIM202"},
                            root=REPO_ROOT)
        assert result.findings == []
        assert result.files_checked == 1
