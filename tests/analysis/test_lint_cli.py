"""End-to-end CLI behaviour: exit codes, formats, baseline workflow.

The last class re-enacts the two acceptance scenarios from the issue:
an unseeded RNG call in core code and a plan field missing from the
cache key must both fail the gate with the right rule code.
"""

import json
import textwrap

import pytest

from repro.__main__ import main as repro_main
from repro.analysis.simlint import BASELINE_NAME, main as simlint_main

CLEAN = """\
    def double(values):
        return [v * 2 for v in sorted(values)]
    """

DIRTY = """\
    import random

    def draw():
        return random.random()
    """


@pytest.fixture
def cli_tree(tmp_path, monkeypatch):
    """Write a fixture repo, chdir into it, return a runner."""

    def build(files):
        (tmp_path / "pyproject.toml").write_text(
            "[project]\nname = 'fixture'\n"
        )
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        monkeypatch.chdir(tmp_path)
        return tmp_path

    return build


class TestExitCodes:
    def test_clean_tree_exits_zero(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": CLEAN})
        assert simlint_main(["src"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": DIRTY})
        assert simlint_main(["src"]) == 1
        out = capsys.readouterr().out
        assert "SIM101" in out
        assert "src/repro/core/x.py:4" in out

    def test_unknown_select_code_exits_two(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": CLEAN})
        assert simlint_main(["--select", "SIM999", "src"]) == 2
        assert "SIM999" in capsys.readouterr().err

    def test_missing_path_exits_two(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": CLEAN})
        assert simlint_main(["nosuchdir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unreadable_baseline_exits_two(self, cli_tree, capsys):
        root = cli_tree({"src/repro/core/x.py": CLEAN})
        (root / BASELINE_NAME).write_text("{broken")
        assert simlint_main(["src"]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_syntax_error_reported_as_sim000(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": "def broken(:\n"})
        assert simlint_main(["src"]) == 1
        assert "SIM000" in capsys.readouterr().out


class TestFormats:
    def test_json_format_is_machine_readable(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": DIRTY})
        assert simlint_main(["--format", "json", "src"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts"] == {"SIM101": 1}
        (finding,) = payload["findings"]
        assert finding["code"] == "SIM101"
        assert finding["path"] == "src/repro/core/x.py"
        assert finding["line"] == 4

    def test_select_narrows_rules(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": DIRTY})
        assert simlint_main(["--select", "SIM303", "src"]) == 0

    def test_list_rules_names_every_family(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": CLEAN})
        assert simlint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SIM101", "SIM201", "SIM301", "SIM401"):
            assert code in out


class TestBaselineWorkflow:
    def test_write_baseline_then_rerun_is_green(self, cli_tree, capsys):
        root = cli_tree({"src/repro/core/x.py": DIRTY})
        assert simlint_main(["src"]) == 1
        assert simlint_main(["--write-baseline", "src"]) == 0
        assert (root / BASELINE_NAME).is_file()
        capsys.readouterr()
        assert simlint_main(["src"]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_flag_resurfaces_findings(self, cli_tree):
        cli_tree({"src/repro/core/x.py": DIRTY})
        assert simlint_main(["--write-baseline", "src"]) == 0
        assert simlint_main(["--no-baseline", "src"]) == 1

    def test_new_finding_fails_despite_baseline(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": DIRTY})
        assert simlint_main(["--write-baseline", "src"]) == 0
        with open("src/repro/core/y.py", "w") as fh:
            fh.write(textwrap.dedent(DIRTY))
        capsys.readouterr()
        assert simlint_main(["src"]) == 1
        out = capsys.readouterr().out
        assert "src/repro/core/y.py" in out
        assert "1 baselined" in out


class TestCheckBaseline:
    def test_stale_entry_fails_the_gate(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": DIRTY})
        assert simlint_main(["--write-baseline", "src"]) == 0
        # Fix the finding; its baseline allowance is now stale.
        with open("src/repro/core/x.py", "w") as fh:
            fh.write(textwrap.dedent(CLEAN))
        capsys.readouterr()
        assert simlint_main(["--check-baseline", "src"]) == 1
        err = capsys.readouterr().err
        assert "stale baseline entry" in err
        assert "SIM101" in err
        assert "regenerate with --write-baseline" in err

    def test_fully_used_baseline_passes(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": DIRTY})
        assert simlint_main(["--write-baseline", "src"]) == 0
        capsys.readouterr()
        assert simlint_main(["--check-baseline", "src"]) == 0
        assert "stale" not in capsys.readouterr().err

    def test_requires_a_baseline_file(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": CLEAN})
        assert simlint_main(["--check-baseline", "src"]) == 2
        assert "needs a baseline" in capsys.readouterr().err

    def test_rejects_select(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": DIRTY})
        assert simlint_main(["--write-baseline", "src"]) == 0
        capsys.readouterr()
        assert simlint_main(
            ["--check-baseline", "--select", "SIM101", "src"]) == 2
        assert "drop --select" in capsys.readouterr().err


class TestExplain:
    def test_explain_prints_rationale_and_examples(self, monkeypatch,
                                                   capsys):
        # --explain reads the real repo's fixture corpus, so run it
        # from the actual repo root rather than a fixture tree.
        import pathlib
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        monkeypatch.chdir(repo_root)
        assert simlint_main(["--explain", "SIM101"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("SIM101:")
        assert "example, flagged" in out
        assert "example, clean" in out

    def test_explain_is_case_insensitive(self, monkeypatch, capsys):
        import pathlib
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        monkeypatch.chdir(repo_root)
        assert simlint_main(["--explain", "sim501"]) == 0
        assert "SIM501" in capsys.readouterr().out

    def test_explain_unknown_code_exits_two(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": CLEAN})
        assert simlint_main(["--explain", "SIM999"]) == 2
        assert "SIM999" in capsys.readouterr().err


class TestEngineFlags:
    def test_jobs_zero_exits_two(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": CLEAN})
        assert simlint_main(["--jobs", "0", "src"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_jobs_two_matches_serial_verdict(self, cli_tree):
        cli_tree({"src/repro/core/x.py": DIRTY})
        assert simlint_main(["--jobs", "2", "--no-cache", "src"]) == 1

    def test_timings_file_has_phase_breakdown(self, cli_tree):
        root = cli_tree({"src/repro/core/x.py": CLEAN})
        assert simlint_main(
            ["--timings", "timings.json", "src"]) == 0
        payload = json.loads((root / "timings.json").read_text())
        assert payload["files_checked"] == 1
        assert payload["jobs"] == 1
        assert "total" in payload["timings_s"]
        assert "cache_hits" in payload and "cache_misses" in payload

    def test_no_cache_leaves_no_cache_dir(self, cli_tree):
        root = cli_tree({"src/repro/core/x.py": CLEAN})
        assert simlint_main(["--no-cache", "src"]) == 0
        assert not (root / ".simlint-cache").exists()

    def test_cache_dir_flag_relocates_the_cache(self, cli_tree):
        root = cli_tree({"src/repro/core/x.py": CLEAN})
        assert simlint_main(
            ["--cache-dir", "elsewhere", "src"]) == 0
        assert list((root / "elsewhere").rglob("*.json"))
        assert not (root / ".simlint-cache").exists()


class TestReproDispatch:
    def test_repro_lint_subcommand(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": DIRTY})
        assert repro_main(["lint", "src"]) == 1
        assert "SIM101" in capsys.readouterr().out

    def test_repro_lint_forwards_options(self, cli_tree, capsys):
        cli_tree({"src/repro/core/x.py": CLEAN})
        assert repro_main(["lint", "--list-rules"]) == 0
        assert "SIM101" in capsys.readouterr().out


class TestAcceptanceScenarios:
    def test_unseeded_rng_in_core_fails_the_gate(self, cli_tree, capsys):
        # Scenario (a) from the issue: a stray random.random() in
        # src/repro/core/ must exit non-zero with SIM101.
        cli_tree({
            "src/repro/core/instruction.py": """\
                import random

                def jitter():
                    return random.random()
                """,
        })
        assert simlint_main(["src"]) == 1
        assert "SIM101" in capsys.readouterr().out

    def test_plan_field_missing_from_cache_key_fails(self, cli_tree,
                                                     capsys):
        # Scenario (b): a new ExperimentPlan field that cache_key()
        # does not serialize must exit non-zero with SIM201.
        cli_tree({
            "src/repro/harness/runner.py": """\
                import hashlib
                import json
                from dataclasses import dataclass

                CACHE_VERSION = 2


                @dataclass(frozen=True)
                class ExperimentPlan:
                    model: str
                    seed: int
                    new_knob: int = 0

                    def cache_key(self):
                        payload = json.dumps(
                            [CACHE_VERSION, self.model, self.seed])
                        return hashlib.sha256(
                            payload.encode()).hexdigest()
                """,
        })
        assert simlint_main(["src"]) == 1
        out = capsys.readouterr().out
        assert "SIM201" in out
        assert "new_knob" in out
