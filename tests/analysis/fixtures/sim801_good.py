# fixture-path: src/repro/service/demo.py
import asyncio


async def throttle(delay):
    await asyncio.sleep(delay)
