# fixture-path: src/repro/wires/demo.py
# simlint: units(delay_s=s, clock_period_s=s, latency_cycles=cycles)
def total_latency(delay_s, clock_period_s, latency_cycles):
    return delay_s / clock_period_s + latency_cycles
