# fixture-path: src/repro/harness/demo.py
import time


def measure(step):
    start = time.perf_counter()
    step()
    return time.perf_counter() - start
