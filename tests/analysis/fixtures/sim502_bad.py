# fixture-path: src/repro/core/demo.py
import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class RoutePlan:
    model: str
    width: int

    def cache_key(self):
        return hashlib.sha256(self.model.encode()).hexdigest()


def segments(plan):
    return plan.width * 2
