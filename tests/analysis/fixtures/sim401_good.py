# fixture-path: src/repro/core/demo.py
from dataclasses import dataclass


@dataclass(frozen=True)
class SweepPlan:
    model: str
