# fixture-path: src/repro/core/demo.py
def emit(names):
    for name in set(names):
        print(name)
