# fixture-path: src/repro/core/demo.py
def emit(names):
    for name in sorted(set(names)):
        print(name)
