# fixture-path: src/repro/core/demo.py
import hashlib
import json
from dataclasses import dataclass

CACHE_VERSION = 1


@dataclass(frozen=True)
class Plan:
    model: str

    def cache_key(self):
        payload = json.dumps([CACHE_VERSION, self.model])
        return hashlib.sha256(payload.encode()).hexdigest()
