# fixture-path: src/repro/core/demo.py
import random


def draw(seed):
    rng = random.Random(seed)
    return rng.random()
