# fixture-path: src/repro/core/demo.py
import time


def stamp(record):
    record.at = time.time()
