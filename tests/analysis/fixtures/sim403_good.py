# fixture-path: src/repro/core/demo.py
import math


def saturated(ipc):
    return math.isclose(ipc, 0.95, rel_tol=1e-9)
