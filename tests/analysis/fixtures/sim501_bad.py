# fixture-path: src/repro/power/demo.py
import random


def decayed(ewma, idle):
    # Dithered gate points are unreproducible across engines.
    rng = random.Random(42)
    return ewma * 0.5 ** (idle / 16.0) + rng.random() * 1e-6
