# fixture-path: src/repro/core/demo.py
import random


def make_stream():
    return random.Random(42)
