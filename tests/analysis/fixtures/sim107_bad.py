# fixture-path: src/repro/service/demo.py
import asyncio


async def kick(work):
    asyncio.create_task(work())
