# fixture-path: src/repro/core/demo.py
def run(steps=[]):
    return steps
