# fixture-path: src/repro/core/demo.py
def lookup(table, model):
    if model not in table:
        raise KeyError(model)
    return table[model]
