# fixture-path: src/repro/wires/demo.py
# simlint: units(length_m=m, return=s)
def base_delay(length_m):
    return 1e-9


# simlint: units(span_m=m, return=s)
def total_delay(span_m):
    return base_delay(span_m)
