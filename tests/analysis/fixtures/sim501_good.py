# fixture-path: src/repro/power/demo.py
import random


def decayed(ewma, idle):
    # Closed-form decay: the gating path itself is RNG-free.
    return ewma * 0.5 ** (idle / 16.0)


def jittered(plan, ewma):
    # When randomness is genuinely wanted, seed it from the plan.
    return ewma + random.Random(plan.seed).random() * 1e-6
