# fixture-path: src/repro/core/demo.py
import random


def make_stream(plan):
    return random.Random(plan.seed)
