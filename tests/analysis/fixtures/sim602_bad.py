# fixture-path: src/repro/wires/demo.py
# simlint: units(length_m=m, return=s)
def base_delay(length_m):
    return 1e-9


# simlint: units(latency_cycles=cycles)
def schedule(latency_cycles):
    return base_delay(latency_cycles)
