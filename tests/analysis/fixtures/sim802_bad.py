# fixture-path: src/repro/service/demo.py
import json


def save_record(path, record):
    with open(path, "w") as handle:
        json.dump(record, handle)


async def handle_job(path, record):
    save_record(path, record)
