# fixture-path: src/repro/core/demo.py
from dataclasses import dataclass


@dataclass
class SweepPlan:
    model: str
