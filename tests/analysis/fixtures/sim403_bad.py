# fixture-path: src/repro/core/demo.py
def saturated(ipc):
    return ipc == 0.95
