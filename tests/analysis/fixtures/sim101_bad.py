# fixture-path: src/repro/core/demo.py
import random


def draw():
    return random.random()
