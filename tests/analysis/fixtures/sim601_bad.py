# fixture-path: src/repro/wires/demo.py
# simlint: units(delay_s=s, latency_cycles=cycles)
def total_latency(delay_s, latency_cycles):
    return delay_s + latency_cycles
