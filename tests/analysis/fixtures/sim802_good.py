# fixture-path: src/repro/service/demo.py
import asyncio
import json


def save_record(path, record):
    with open(path, "w") as handle:
        json.dump(record, handle)


async def handle_job(path, record):
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, save_record, path, record)
