# fixture-path: src/repro/core/demo.py
def run(steps=None):
    return steps if steps is not None else []
