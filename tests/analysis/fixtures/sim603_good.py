# fixture-path: src/repro/wires/demo.py
# simlint: units(length=m, return=s)
def base_delay(length):
    return 1e-9
