# fixture-path: src/repro/core/demo.py
def run(step):
    try:
        step()
    except Exception:
        return None
