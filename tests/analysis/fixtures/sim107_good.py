# fixture-path: src/repro/service/demo.py
import asyncio

TASKS = set()


async def kick(work):
    task = asyncio.create_task(work())
    TASKS.add(task)
    task.add_done_callback(TASKS.discard)
    return task
