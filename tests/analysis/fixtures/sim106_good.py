# fixture-path: src/repro/clusters/demo.py
import numpy as np


def rank(scores):
    return np.argsort(scores, kind="stable")
