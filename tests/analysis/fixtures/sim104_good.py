# fixture-path: src/repro/core/demo.py
def utilization_report(counters):
    return [kv for kv in sorted(counters.items())]
