# fixture-path: src/repro/core/demo.py
def utilization_report(counters):
    rows = []
    for key, value in counters.items():
        rows.append((key, value))
    return rows
