# fixture-path: src/repro/service/demo.py
import time


async def throttle(delay):
    time.sleep(delay)
