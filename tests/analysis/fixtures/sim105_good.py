# fixture-path: src/repro/core/demo.py
def order(transfers):
    return sorted(transfers, key=lambda t: t.issue_cycle)
