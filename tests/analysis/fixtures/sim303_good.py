# fixture-path: src/repro/core/demo.py
from repro.interconnect.errors import ConfigError


def lookup(table, model):
    if model not in table:
        raise ConfigError(f"unknown model {model!r}")
    return table[model]
