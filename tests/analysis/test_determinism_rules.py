"""SIM1xx: determinism rules, positive and negative fixtures."""


class TestSIM101GlobalRNG:
    def test_flags_global_random_call(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                return random.random()
            """}, select={"SIM101"})
        assert [f.code for f in result.findings] == ["SIM101"]
        assert "process-global RNG" in result.findings[0].message

    def test_flags_from_import_and_global_seed(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random
            from random import randint

            def draw():
                random.seed(3)
                return randint(0, 4)
            """}, select={"SIM101"})
        assert [f.code for f in result.findings] == ["SIM101", "SIM101"]

    def test_flags_numpy_global_rng(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import numpy as np

            def draw():
                return np.random.rand(3)
            """}, select={"SIM101"})
        assert [f.code for f in result.findings] == ["SIM101"]
        assert "NumPy" in result.findings[0].message

    def test_seeded_instances_are_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random
            import numpy as np

            def draw(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng.random() + gen.random()
            """}, select={"SIM101"})
        assert result.findings == []

    def test_fires_in_tests_too(self, lint_tree):
        result = lint_tree({"tests/test_x.py": """\
            import random

            def test_roll():
                assert random.random() < 1.0
            """}, select={"SIM101"})
        assert [f.code for f in result.findings] == ["SIM101"]


class TestSIM102WallClock:
    def test_flags_clock_in_simulator(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import time
            import uuid

            def stamp():
                return time.time(), uuid.uuid4()
            """}, select={"SIM102"})
        assert [f.code for f in result.findings] == ["SIM102", "SIM102"]

    def test_harness_timing_paths_are_exempt(self, lint_tree):
        result = lint_tree({"src/repro/harness/x.py": """\
            import time

            def measure():
                return time.perf_counter()
            """}, select={"SIM102"})
        assert result.findings == []

    def test_tests_are_exempt(self, lint_tree):
        result = lint_tree({"tests/test_x.py": """\
            import time

            def test_quick():
                assert time.time() > 0
            """}, select={"SIM102"})
        assert result.findings == []

    def test_service_timing_paths_are_exempt(self, lint_tree):
        """Backoff schedules, breaker cooldowns and queue drain
        estimates are wall-clock concerns by design: the sweep
        service package sits outside the simulator's purity rule."""
        result = lint_tree({"src/repro/service/x.py": """\
            import time

            def deadline(budget):
                return time.monotonic() + budget
            """}, select={"SIM102"})
        assert result.findings == []

    def test_telemetry_package_is_not_exempt(self, lint_tree):
        """Cycle-stamped tracing must stay wall-clock-free: the telemetry
        package is simulator code, not harness code, under SIM102."""
        result = lint_tree({"src/repro/telemetry/x.py": """\
            import time

            def stamp():
                return time.time()
            """}, select={"SIM102"})
        assert [f.code for f in result.findings] == ["SIM102"]

    def test_harness_profiling_is_exempt(self, lint_tree):
        """The wall-clock profiler lives in the harness for exactly this
        reason."""
        result = lint_tree({"src/repro/harness/profiling.py": """\
            import time

            def now():
                return time.perf_counter()
            """}, select={"SIM102"})
        assert result.findings == []


class TestSIM103SetIteration:
    def test_flags_loop_over_set_call(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def emit(names):
                for name in set(names):
                    print(name)
            """}, select={"SIM103"})
        assert [f.code for f in result.findings] == ["SIM103"]

    def test_flags_loop_over_tracked_set_name(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            class Tracker:
                def __init__(self):
                    self.active = set()

                def drain(self):
                    return [key for key in self.active]
            """}, select={"SIM103"})
        assert [f.code for f in result.findings] == ["SIM103"]

    def test_sorted_wrapper_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def emit(names):
                for name in sorted(set(names)):
                    print(name)
                return sorted(n for n in set(names))
            """}, select={"SIM103"})
        assert result.findings == []

    def test_order_free_consumers_are_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def check(names, bad):
                seen = set(names)
                return any(n in bad for n in seen), {n for n in seen}
            """}, select={"SIM103"})
        assert result.findings == []


class TestSIM104DictIterationInOutput:
    def test_flags_unsorted_items_in_report(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def utilization_report(counters):
                rows = []
                for key, value in counters.items():
                    rows.append((key, value))
                return rows
            """}, select={"SIM104"})
        assert [f.code for f in result.findings] == ["SIM104"]
        assert "insertion order" in result.findings[0].message

    def test_sorted_items_in_report_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def utilization_report(counters):
                return [kv for kv in sorted(counters.items())]
            """}, select={"SIM104"})
        assert result.findings == []

    def test_non_output_functions_are_not_flagged(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def accumulate(counters):
                total = 0
                for key, value in counters.items():
                    total += value
                return total
            """}, select={"SIM104"})
        assert result.findings == []


class TestSIM105IdOrdering:
    def test_flags_id_sort_key(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def order(objs):
                objs.sort(key=id)
                return sorted(objs, key=lambda o: (o.rank, id(o)))
            """}, select={"SIM105"})
        assert [f.code for f in result.findings] == ["SIM105", "SIM105"]

    def test_field_sort_key_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def order(objs):
                return sorted(objs, key=lambda o: o.rank)
            """}, select={"SIM105"})
        assert result.findings == []


class TestSIM106NumpyNondeterminism:
    def test_flags_order_sensitive_reductions(self, lint_tree, codes_of):
        result = lint_tree({"src/repro/clusters/fast.py": """\
            import numpy as np

            def score(rows, weights):
                total = np.sum(rows, axis=0)
                return np.dot(total, weights)
            """}, select={"SIM106"})
        assert codes_of(result) == [("SIM106", 4), ("SIM106", 5)]
        assert "backend-chosen order" in result.findings[0].message

    def test_flags_from_import_alias(self, lint_tree):
        result = lint_tree({"src/repro/core/fast.py": """\
            from numpy import einsum as contract

            def energy(a, b):
                return contract("ij,j->i", a, b)
            """}, select={"SIM106"})
        assert [f.code for f in result.findings] == ["SIM106"]

    def test_flags_unstable_sorts(self, lint_tree, codes_of):
        result = lint_tree({"src/repro/interconnect/fast.py": """\
            import numpy as np

            def order(scores):
                ranked = np.argsort(scores)
                tied = scores.argsort()
                return np.sort(scores), ranked, tied
            """}, select={"SIM106"})
        assert codes_of(result) == [("SIM106", 4), ("SIM106", 5),
                                    ("SIM106", 6)]
        assert 'kind="stable"' in result.findings[0].message

    def test_stable_sorts_are_fine(self, lint_tree):
        result = lint_tree({"src/repro/interconnect/fast.py": """\
            import numpy as np

            def order(scores):
                ranked = np.argsort(scores, kind="stable")
                legacy = scores.argsort(kind="mergesort")
                return np.sort(scores, kind="stable"), ranked, legacy
            """}, select={"SIM106"})
        assert result.findings == []

    def test_elementwise_accumulation_is_fine(self, lint_tree):
        # The sanctioned VectorSteering pattern: per-row fused
        # multiply-add via broadcasting, no reduction call.
        result = lint_tree({"src/repro/clusters/fast.py": """\
            import numpy as np

            def score(rows, weights, free, iq):
                scores = np.zeros(len(free))
                for weight, row in zip(weights, rows):
                    scores += weight * row
                scores += 0.5 * (free / iq)
                return scores.tolist()
            """}, select={"SIM106"})
        assert result.findings == []

    def test_harness_and_tests_are_exempt(self, lint_tree):
        files = {
            "src/repro/harness/report.py": """\
                import numpy as np

                def mean_ipc(values):
                    return np.mean(values)
                """,
            "tests/test_scores.py": """\
                import numpy as np

                def test_total():
                    assert np.sum([1.0, 2.0]) == 3.0
                """,
        }
        result = lint_tree(files, select={"SIM106"})
        assert result.findings == []

    def test_plain_argsort_method_without_numpy_import_is_fine(
            self, lint_tree):
        # Without a numpy import the .argsort() heuristic stays quiet
        # (no evidence the receiver is an ndarray).
        result = lint_tree({"src/repro/core/x.py": """\
            def order(frame):
                return frame.argsort()
            """}, select={"SIM106"})
        assert result.findings == []

    def test_inline_suppression_respected(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import numpy as np

            def checksum(arr):
                # Integer-only reduction: order-insensitive by design.
                return np.sum(arr)  # simlint: disable=SIM106
            """}, select={"SIM106"})
        assert result.findings == []
