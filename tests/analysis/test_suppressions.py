"""Inline ``# simlint: disable=...`` suppression semantics."""


class TestInlineSuppression:
    def test_same_line_suppression(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                return random.random()  # simlint: disable=SIM101
            """}, select={"SIM101"})
        assert result.findings == []
        assert result.suppressed == 1

    def test_standalone_comment_covers_next_code_line(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                # simlint: disable=SIM101
                return random.random()
            """}, select={"SIM101"})
        assert result.findings == []
        assert result.suppressed == 1

    def test_family_wildcard(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def run(step):
                try:
                    step()
                except Exception:  # simlint: disable=SIM3xx
                    return None
            """}, select={"SIM302"})
        assert result.findings == []
        assert result.suppressed == 1

    def test_disable_all(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                return random.random()  # simlint: disable=all
            """})
        assert result.findings == []
        assert result.suppressed >= 1

    def test_non_matching_code_still_reports(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                return random.random()  # simlint: disable=SIM301
            """}, select={"SIM101"})
        assert [f.code for f in result.findings] == ["SIM101"]
        assert result.suppressed == 0

    def test_suppression_on_other_line_has_no_effect(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def seed_it():
                random.seed(0)  # simlint: disable=SIM101

            def draw():
                return random.random()
            """}, select={"SIM101"})
        assert [f.code for f in result.findings] == ["SIM101"]
        assert result.suppressed == 1

    def test_comma_separated_codes(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random
            import time

            def draw():
                # simlint: disable=SIM101, SIM102
                return random.random() + time.time()
            """}, select={"SIM101", "SIM102"})
        assert result.findings == []
        assert result.suppressed == 2
