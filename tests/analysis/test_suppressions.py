"""Inline ``# simlint: disable=...`` suppression semantics."""

from repro.analysis import lint_paths


class TestInlineSuppression:
    def test_same_line_suppression(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                return random.random()  # simlint: disable=SIM101
            """}, select={"SIM101"})
        assert result.findings == []
        assert result.suppressed == 1

    def test_standalone_comment_covers_next_code_line(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                # simlint: disable=SIM101
                return random.random()
            """}, select={"SIM101"})
        assert result.findings == []
        assert result.suppressed == 1

    def test_family_wildcard(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def run(step):
                try:
                    step()
                except Exception:  # simlint: disable=SIM3xx
                    return None
            """}, select={"SIM302"})
        assert result.findings == []
        assert result.suppressed == 1

    def test_disable_all(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                return random.random()  # simlint: disable=all
            """})
        assert result.findings == []
        assert result.suppressed >= 1

    def test_non_matching_code_still_reports(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                return random.random()  # simlint: disable=SIM301
            """}, select={"SIM101"})
        assert [f.code for f in result.findings] == ["SIM101"]
        assert result.suppressed == 0

    def test_suppression_on_other_line_has_no_effect(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def seed_it():
                random.seed(0)  # simlint: disable=SIM101

            def draw():
                return random.random()
            """}, select={"SIM101"})
        assert [f.code for f in result.findings] == ["SIM101"]
        assert result.suppressed == 1

    def test_comma_separated_codes(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random
            import time

            def draw():
                # simlint: disable=SIM101, SIM102
                return random.random() + time.time()
            """}, select={"SIM101", "SIM102"})
        assert result.findings == []
        assert result.suppressed == 2


class TestWildcardScopes:
    """SIM5xx (family) vs SIMxxx (everything) vs all."""

    def test_sim5xx_covers_the_seedflow_family(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def make_stream():
                return random.Random(42)  # simlint: disable=SIM5xx
            """}, select={"SIM501"})
        assert result.findings == []
        assert result.suppressed == 1

    def test_sim5xx_does_not_leak_into_other_families(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                return random.random()  # simlint: disable=SIM5xx
            """}, select={"SIM101"})
        assert [f.code for f in result.findings] == ["SIM101"]
        assert result.suppressed == 0

    def test_simxxx_covers_every_family(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                return random.random()  # simlint: disable=SIMxxx

            def make_stream():
                return random.Random(42)  # simlint: disable=SIMxxx
            """}, select={"SIM101", "SIM501"})
        assert result.findings == []
        assert result.suppressed == 2

    def test_project_rule_findings_honor_inline_disables(self,
                                                         lint_tree):
        # SIM501 is computed in the whole-program pass, long after the
        # per-file suppression scan; the engine must still apply the
        # line's disable comment to it.
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def make_stream():
                return random.Random(42)  # simlint: disable=SIM501
            """}, select={"SIM501"})
        assert result.findings == []
        assert result.suppressed == 1


class TestMultiLineStatements:
    def test_comment_inside_multiline_expression_covers_next_line(
            self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                return (
                    # simlint: disable=SIM101
                    random.random()
                )
            """}, select={"SIM101"})
        assert result.findings == []
        assert result.suppressed == 1

    def test_trailing_comment_on_last_line_misses_the_finding(
            self, lint_tree):
        # The disable rides the closing-paren line; the finding is
        # anchored at the call two lines up, so it must still report.
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def draw():
                value = (
                    random.random()
                )  # simlint: disable=SIM101
                return value
            """}, select={"SIM101"})
        assert [f.code for f in result.findings] == ["SIM101"]
        assert result.suppressed == 0


class TestCRLFSources:
    def _write_crlf(self, tmp_path, rel, lines):
        (tmp_path / "pyproject.toml").write_text(
            "[project]\nname = 'fixture'\n")
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="") as fh:
            fh.write("\r\n".join(lines) + "\r\n")
        return [tmp_path / rel.split("/")[0]]

    def test_crlf_disable_comment_still_suppresses(self, tmp_path):
        tops = self._write_crlf(tmp_path, "src/repro/core/x.py", [
            "import random",
            "",
            "def draw():",
            "    return random.random()  # simlint: disable=SIM101",
        ])
        result = lint_paths(tops, root=tmp_path, select={"SIM101"},
                            use_cache=False)
        assert result.findings == []
        assert result.suppressed == 1

    def test_crlf_source_lints_without_pseudo_codes(self, tmp_path):
        tops = self._write_crlf(tmp_path, "src/repro/core/x.py", [
            "import random",
            "",
            "def draw():",
            "    return random.random()",
        ])
        result = lint_paths(tops, root=tmp_path, use_cache=False)
        codes = [f.code for f in result.findings]
        assert "SIM000" not in codes and "SIM002" not in codes
        assert "SIM101" in codes
