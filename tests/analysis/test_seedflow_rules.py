"""SIM5xx: seed/RNG provenance across the project call graph."""


class TestSIM501RngProvenance:
    def test_constant_seed_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def make_stream():
                return random.Random(42)
            """}, select={"SIM501"})
        assert [f.code for f in result.findings] == ["SIM501"]
        assert "constant or plan-independent" in result.findings[0].message

    def test_missing_seed_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import numpy as np

            def make_stream():
                return np.random.default_rng()
            """}, select={"SIM501"})
        assert [f.code for f in result.findings] == ["SIM501"]
        assert "without a seed" in result.findings[0].message

    def test_os_entropy_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def make_stream():
                return random.SystemRandom()
            """}, select={"SIM501"})
        assert [f.code for f in result.findings] == ["SIM501"]
        assert "OS entropy" in result.findings[0].message

    def test_plan_seed_attribute_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def make_stream(plan):
                return random.Random(plan.seed)
            """}, select={"SIM501"})
        assert result.findings == []

    def test_seed_deriving_call_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def make_stream(plan, attempt):
                return random.Random(backoff_seed(plan, attempt))
            """}, select={"SIM501"})
        assert result.findings == []

    def test_seedish_parameter_name_is_a_contract(self, lint_tree):
        # A parameter *named* seed states its own provenance; the
        # callers that violate it get flagged at their own RNG sites.
        result = lint_tree({"src/repro/core/x.py": """\
            import random

            def make_stream(seed):
                return random.Random(seed)
            """}, select={"SIM501"})
        assert result.findings == []

    def test_cross_module_plan_fed_parameter_is_fine(self, lint_tree):
        result = lint_tree({
            "src/repro/core/streams.py": """\
                import random

                def make_stream(n):
                    return random.Random(n)
                """,
            "src/repro/core/driver.py": """\
                from repro.core.streams import make_stream

                def run(plan):
                    return make_stream(plan.seed)
                """,
        }, select={"SIM501"})
        assert result.findings == []

    def test_cross_module_unfed_parameter_is_flagged(self, lint_tree):
        result = lint_tree({
            "src/repro/core/streams.py": """\
                import random

                def make_stream(n):
                    return random.Random(n)
                """,
            "src/repro/core/driver.py": """\
                from repro.core.streams import make_stream

                def run():
                    return make_stream(1234)
                """,
        }, select={"SIM501"})
        assert [f.code for f in result.findings] == ["SIM501"]
        assert "no src/ call site feeds" in result.findings[0].message
        assert result.findings[0].path == "src/repro/core/streams.py"

    def test_two_hop_parameter_chase(self, lint_tree):
        result = lint_tree({
            "src/repro/core/streams.py": """\
                import random

                def make_stream(n):
                    return random.Random(n)

                def wrapped(m):
                    return make_stream(m)
                """,
            "src/repro/core/driver.py": """\
                from repro.core.streams import wrapped

                def run(plan):
                    return wrapped(plan.seed)
                """,
        }, select={"SIM501"})
        assert result.findings == []

    def test_test_call_sites_are_not_evidence(self, lint_tree):
        # A test passing a literal seed must not count as provenance
        # for simulator code.
        result = lint_tree({
            "src/repro/core/streams.py": """\
                import random

                def make_stream(n):
                    return random.Random(n)
                """,
            "tests/test_streams.py": """\
                from repro.core.streams import make_stream

                def test_stream():
                    assert make_stream(7).random() < 1.0
                """,
        }, select={"SIM501"})
        assert [f.code for f in result.findings] == ["SIM501"]

    def test_rule_is_scoped_to_src(self, lint_tree):
        result = lint_tree({"tests/test_x.py": """\
            import random

            def test_stream():
                assert random.Random(42).random() < 1.0
            """}, select={"SIM501"})
        assert result.findings == []


class TestEwmaRngFreeGuarantee:
    """The gating path is deterministic by construction.

    Both engines must settle identical gate points from the same
    injection history, so the power package may not consult an RNG at
    all: no dithered thresholds, no jittered decay.  SIM501 is the
    fence -- any RNG smuggled into ``src/repro/power/`` is either
    plan-independent (flagged) or plan-seeded (visible in review) --
    and the source-level scan below pins the stronger guarantee that
    today there is no RNG construction whatsoever.
    """

    def test_jittered_ewma_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/power/x.py": """\
            import random

            def decayed(ewma, idle):
                rng = random.Random(42)
                return ewma * 0.5 ** (idle / 16.0) + rng.random() * 1e-6
            """}, select={"SIM501"})
        assert [f.code for f in result.findings] == ["SIM501"]
        assert "constant or plan-independent" in result.findings[0].message

    def test_unseeded_jitter_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/power/x.py": """\
            import random

            def dither(threshold):
                rng = random.Random()
                return threshold + rng.random() * 1e-3
            """}, select={"SIM501"})
        assert [f.code for f in result.findings] == ["SIM501"]
        assert "without a seed" in result.findings[0].message

    def test_closed_form_decay_is_clean(self, lint_tree):
        result = lint_tree({"src/repro/power/x.py": """\
            def decayed(ewma, idle):
                return ewma * 0.5 ** (idle / 16.0)
            """}, select={"SIM501"})
        assert result.findings == []

    def test_real_power_package_constructs_no_rng(self):
        import ast
        from pathlib import Path

        package = (Path(__file__).resolve().parents[2]
                   / "src" / "repro" / "power")
        offenders = []
        for path in sorted(package.glob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = [a.name for a in node.names]
                elif isinstance(node, ast.ImportFrom):
                    names = [node.module or ""]
                else:
                    continue
                offenders.extend(
                    f"{path.name}:{node.lineno}:{name}"
                    for name in names
                    if name == "random" or name.startswith(("random.",
                                                            "numpy"))
                )
        assert offenders == []


class TestSIM502CrossModuleKeyFields:
    def test_unkeyed_field_read_in_other_module_is_flagged(
            self, lint_tree):
        result = lint_tree({
            "src/repro/core/plans.py": """\
                import hashlib
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class RoutePlan:
                    model: str
                    width: int

                    def cache_key(self):
                        return hashlib.sha256(
                            self.model.encode()).hexdigest()
                """,
            "src/repro/interconnect/router.py": """\
                def segments(plan):
                    return plan.width * 2
                """,
        }, select={"SIM502"})
        assert [f.code for f in result.findings] == ["SIM502"]
        finding = result.findings[0]
        assert finding.path == "src/repro/interconnect/router.py"
        assert "RoutePlan" in finding.message
        assert "'width'" in finding.message

    def test_keyed_field_is_fine(self, lint_tree):
        result = lint_tree({
            "src/repro/core/plans.py": """\
                import hashlib
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class RoutePlan:
                    model: str
                    width: int

                    def cache_key(self):
                        payload = f"{self.model}:{self.width}"
                        return hashlib.sha256(
                            payload.encode()).hexdigest()
                """,
            "src/repro/interconnect/router.py": """\
                def segments(plan):
                    return plan.width * 2
                """,
        }, select={"SIM502"})
        assert result.findings == []

    def test_whole_object_serialization_is_fine(self, lint_tree):
        result = lint_tree({
            "src/repro/core/plans.py": """\
                import hashlib
                import json
                from dataclasses import asdict, dataclass

                @dataclass(frozen=True)
                class RoutePlan:
                    model: str
                    width: int

                    def cache_key(self):
                        payload = json.dumps(asdict(self),
                                             sort_keys=True)
                        return hashlib.sha256(
                            payload.encode()).hexdigest()
                """,
            "src/repro/interconnect/router.py": """\
                def segments(plan):
                    return plan.width * 2
                """,
        }, select={"SIM502"})
        assert result.findings == []

    def test_plan_annotated_parameter_counts_as_a_read(
            self, lint_tree):
        result = lint_tree({
            "src/repro/core/plans.py": """\
                import hashlib
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class RoutePlan:
                    model: str
                    width: int

                    def cache_key(self):
                        return hashlib.sha256(
                            self.model.encode()).hexdigest()
                """,
            "src/repro/interconnect/router.py": """\
                from repro.core.plans import RoutePlan

                def segments(route: RoutePlan):
                    return route.width * 2
                """,
        }, select={"SIM502"})
        assert [f.code for f in result.findings] == ["SIM502"]

    def test_reads_of_unrelated_names_are_ignored(self, lint_tree):
        result = lint_tree({
            "src/repro/core/plans.py": """\
                import hashlib
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class RoutePlan:
                    model: str
                    width: int

                    def cache_key(self):
                        return hashlib.sha256(
                            self.model.encode()).hexdigest()
                """,
            "src/repro/interconnect/router.py": """\
                def segments(spec):
                    return spec.width * 2
                """,
        }, select={"SIM502"})
        assert result.findings == []
