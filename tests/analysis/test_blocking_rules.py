"""SIM8xx: blocking calls on (or reachable from) the event loop."""


class TestSIM801DirectBlocking:
    def test_time_sleep_in_async_def_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import time

            async def throttle(delay):
                time.sleep(delay)
            """}, select={"SIM801"})
        assert [f.code for f in result.findings] == ["SIM801"]
        assert "time.sleep" in result.findings[0].message

    def test_open_in_async_def_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            async def slurp(path):
                with open(path) as handle:
                    return handle.read()
            """}, select={"SIM801"})
        assert [f.code for f in result.findings] == ["SIM801"]

    def test_path_methods_are_flagged(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            async def persist(path, text):
                path.write_text(text)
            """}, select={"SIM801"})
        assert [f.code for f in result.findings] == ["SIM801"]
        assert "sync file I/O" in result.findings[0].message

    def test_sweep_fanout_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            from repro.harness.runner import run_many

            async def sweep(plans):
                return run_many(plans)
            """}, select={"SIM801"})
        assert [f.code for f in result.findings] == ["SIM801"]
        assert "sweep fan-out" in result.findings[0].message

    def test_sync_def_is_not_flagged(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import time

            def throttle(delay):
                time.sleep(delay)
            """}, select={"SIM801"})
        assert result.findings == []

    def test_asyncio_sleep_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import asyncio

            async def throttle(delay):
                await asyncio.sleep(delay)
            """}, select={"SIM801"})
        assert result.findings == []

    def test_rule_is_scoped_to_src(self, lint_tree):
        result = lint_tree({"tests/test_x.py": """\
            import time

            async def test_throttle():
                time.sleep(0.01)
            """}, select={"SIM801"})
        assert result.findings == []


class TestSIM802TransitiveBlocking:
    def test_one_hop_helper_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import json

            def save_record(path, record):
                with open(path, "w") as handle:
                    json.dump(record, handle)

            async def handle_job(path, record):
                save_record(path, record)
            """}, select={"SIM802"})
        assert [f.code for f in result.findings] == ["SIM802"]
        finding = result.findings[0]
        assert "save_record" in finding.message
        # Anchored at the call site inside the coroutine.
        assert finding.line == 8

    def test_two_hops_across_modules(self, lint_tree):
        result = lint_tree({
            "src/repro/service/store.py": """\
                import os

                class JobStore:
                    def save(self, path):
                        os.replace(path, path)

                    def checkpoint(self, path):
                        self.save(path)
                """,
            "src/repro/service/server.py": """\
                from repro.service.store import JobStore

                class Server:
                    def __init__(self):
                        self.store = JobStore()

                    async def admit(self, path):
                        self.store.checkpoint(path)
                """,
        }, select={"SIM802"})
        assert [f.code for f in result.findings] == ["SIM802"]
        finding = result.findings[0]
        assert finding.path == "src/repro/service/server.py"
        assert "os.replace" in finding.message
        assert "JobStore.checkpoint" in finding.message

    def test_one_finding_per_coroutine_helper_pair(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import json

            def save_record(path, record):
                with open(path, "w") as handle:
                    json.dump(record, handle)

            async def handle_job(path, record):
                save_record(path, record)
                save_record(path, record)
            """}, select={"SIM802"})
        assert [f.code for f in result.findings] == ["SIM802"]

    def test_executor_handoff_by_reference_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import asyncio
            import json

            def save_record(path, record):
                with open(path, "w") as handle:
                    json.dump(record, handle)

            async def handle_job(path, record):
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, save_record, path,
                                           record)
            """}, select={"SIM802"})
        assert result.findings == []

    def test_async_callees_are_not_descended(self, lint_tree):
        # The inner coroutine is its own SIM801/802 root; awaiting it
        # from outside must not duplicate the report.
        result = lint_tree({"src/repro/service/x.py": """\
            import time

            async def inner(delay):
                time.sleep(delay)

            async def outer(delay):
                await inner(delay)
            """}, select={"SIM802"})
        assert result.findings == []

    def test_clean_helper_chain_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            def shape(record):
                return {"id": record["id"]}

            async def handle_job(record):
                return shape(record)
            """}, select={"SIM802"})
        assert result.findings == []
