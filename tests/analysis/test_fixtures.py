"""Every rule's fixture pair must behave as documented.

The files under ``tests/analysis/fixtures/`` are what ``repro lint
--explain SIMxxx`` prints as the bad/good examples, so this test is
what stops the documentation drifting from the analyzer: the ``bad``
fixture must produce its rule's code when linted at its declared
path, and the ``good`` fixture must not.
"""

from pathlib import Path

import pytest

from repro.analysis import all_rules
from repro.analysis.explain import (FIXTURES_DIR, explain,
                                    fixture_path, fixture_target)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load(code, kind):
    path = fixture_path(REPO_ROOT, code, kind)
    assert path.is_file(), (
        f"rule {code} has no {kind} fixture; add "
        f"{FIXTURES_DIR}/{code.lower()}_{kind}.py so --explain can "
        f"show a working example"
    )
    source = path.read_text(encoding="utf-8")
    target = fixture_target(source)
    assert target, (
        f"{path} must start with '# fixture-path: src/...' naming "
        f"the repo-relative path it is linted under"
    )
    return target, source


@pytest.mark.parametrize("rule", all_rules(),
                         ids=lambda rule: rule.code)
def test_bad_fixture_is_flagged(rule, lint_tree):
    target, source = _load(rule.code, "bad")
    result = lint_tree({target: source}, select={rule.code})
    codes = [f.code for f in result.findings]
    assert rule.code in codes, (
        f"{rule.code} bad fixture produced {codes or 'no findings'}"
    )


@pytest.mark.parametrize("rule", all_rules(),
                         ids=lambda rule: rule.code)
def test_good_fixture_is_clean(rule, lint_tree):
    target, source = _load(rule.code, "good")
    result = lint_tree({target: source}, select={rule.code})
    assert result.findings == [], (
        f"{rule.code} good fixture is not clean: "
        f"{[f.render() for f in result.findings]}"
    )


@pytest.mark.parametrize("rule", all_rules(),
                         ids=lambda rule: rule.code)
def test_explain_shows_both_examples(rule):
    text = explain(rule.code, REPO_ROOT)
    assert text is not None
    assert text.startswith(f"{rule.code}: {rule.summary}")
    assert "example, flagged" in text
    assert "example, clean" in text
    # The rationale (docstring) must be present, not just the summary.
    doc = (rule.check.__doc__ or "").strip().splitlines()
    assert doc and doc[0].strip() in text


def test_explain_covers_pseudo_codes():
    for code in ("SIM000", "SIM002"):
        text = explain(code, REPO_ROOT)
        assert text is not None and code in text


def test_explain_rejects_unknown_code():
    assert explain("SIM999", REPO_ROOT) is None


def test_fixture_corpus_is_ignored_by_discovery():
    """The deliberate violations must never reach the repo's own gate."""
    from repro.analysis.engine import discover_files
    discovered = discover_files([REPO_ROOT / "tests"])
    fixtures = REPO_ROOT / FIXTURES_DIR
    assert (fixtures / ".simlint-ignore").is_file()
    assert not [p for p in discovered if fixtures in p.parents]
