"""SIM6xx: physical-units checking over declarations and builtins."""


class TestSIM601UnitArithmetic:
    def test_mixed_addition_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/wires/x.py": """\
            # simlint: units(delay_s=s, latency_cycles=cycles)
            def total(delay_s, latency_cycles):
                return delay_s + latency_cycles
            """}, select={"SIM601"})
        assert [f.code for f in result.findings] == ["SIM601"]
        message = result.findings[0].message
        assert "'cycles'" in message and "'s'" in message

    def test_mixed_comparison_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/wires/x.py": """\
            # simlint: units(delay_s=s, budget_cycles=cycles)
            def over(delay_s, budget_cycles):
                return delay_s > budget_cycles
            """}, select={"SIM601"})
        assert [f.code for f in result.findings] == ["SIM601"]

    def test_matching_units_are_fine(self, lint_tree):
        result = lint_tree({"src/repro/wires/x.py": """\
            # simlint: units(a_s=s, b_s=s)
            def total(a_s, b_s):
                return a_s + b_s
            """}, select={"SIM601"})
        assert result.findings == []

    def test_division_erases_units(self, lint_tree):
        # s / s is a ratio; adding cycles to it is not provably wrong.
        result = lint_tree({"src/repro/wires/x.py": """\
            # simlint: units(d_s=s, p_s=s, lat_cycles=cycles)
            def total(d_s, p_s, lat_cycles):
                return d_s / p_s + lat_cycles
            """}, select={"SIM601"})
        assert result.findings == []

    def test_dimensionless_offsets_are_fine(self, lint_tree):
        result = lint_tree({"src/repro/wires/x.py": """\
            # simlint: units(lat_cycles=cycles)
            def padded(lat_cycles):
                return lat_cycles + 1
            """}, select={"SIM601"})
        assert result.findings == []

    def test_accumulator_seeded_with_zero_is_fine(self, lint_tree):
        # The `total = 0.0; total += x` idiom must not pin the
        # accumulator to "dimensionless".
        result = lint_tree({"src/repro/wires/x.py": """\
            # simlint: units(step_s=s, return=s)
            def total(values, step_s):
                acc = 0.0
                for value in values:
                    acc += value * step_s
                return acc
            """}, select={"SIM601", "SIM602"})
        assert result.findings == []

    def test_units_propagate_through_assignment(self, lint_tree):
        result = lint_tree({"src/repro/wires/x.py": """\
            # simlint: units(delay_s=s, lat_cycles=cycles)
            def total(delay_s, lat_cycles):
                held = delay_s
                return held + lat_cycles
            """}, select={"SIM601"})
        assert [f.code for f in result.findings] == ["SIM601"]

    def test_scope_is_unit_modules_only(self, lint_tree):
        # No declarations, outside interconnect/wires/metrics: the
        # pass does not run at all.
        result = lint_tree({"src/repro/core/x.py": """\
            def total(a, b):
                return a + b
            """}, select={"SIM601"})
        assert result.findings == []


class TestSIM602UnitHandoff:
    def test_cross_module_handoff_mismatch_is_flagged(self, lint_tree):
        result = lint_tree({
            "src/repro/wires/base.py": """\
                # simlint: units(length_m=m, return=s)
                def base_delay(length_m):
                    return 1e-9
                """,
            "src/repro/wires/sched.py": """\
                from repro.wires.base import base_delay

                # simlint: units(lat_cycles=cycles)
                def schedule(lat_cycles):
                    return base_delay(lat_cycles)
                """,
        }, select={"SIM602"})
        assert [f.code for f in result.findings] == ["SIM602"]
        finding = result.findings[0]
        assert finding.path == "src/repro/wires/sched.py"
        assert "'cycles'" in finding.message
        assert "'m'" in finding.message

    def test_matching_handoff_is_fine(self, lint_tree):
        result = lint_tree({
            "src/repro/wires/base.py": """\
                # simlint: units(length_m=m, return=s)
                def base_delay(length_m):
                    return 1e-9
                """,
            "src/repro/wires/sched.py": """\
                from repro.wires.base import base_delay

                # simlint: units(span_m=m, return=s)
                def total_delay(span_m):
                    return base_delay(span_m)
                """,
        }, select={"SIM602"})
        assert result.findings == []

    def test_keyword_handoff_mismatch_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/wires/x.py": """\
            # simlint: units(length_m=m, return=s)
            def base_delay(length_m):
                return 1e-9

            # simlint: units(lat_cycles=cycles)
            def schedule(lat_cycles):
                return base_delay(length_m=lat_cycles)
            """}, select={"SIM602"})
        assert [f.code for f in result.findings] == ["SIM602"]

    def test_return_unit_mismatch_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/wires/x.py": """\
            # simlint: units(lat_cycles=cycles, return=cycles)
            def measure(lat_cycles):
                return lat_cycles

            # simlint: units(lat_cycles=cycles, return=s)
            def measure_s(lat_cycles):
                return measure(lat_cycles)
            """}, select={"SIM602"})
        assert [f.code for f in result.findings] == ["SIM602"]
        assert "declared return" in result.findings[0].message

    def test_builtin_registry_pins_real_apis(self, lint_tree):
        # The builtin table knows repro.interconnect.stats: handing a
        # seconds value to its cycles parameter is a finding with no
        # in-source declaration at the call site.
        result = lint_tree({"src/repro/interconnect/x.py": """\
            from repro.interconnect.stats import leakage_energy

            # simlint: units(window_s=s)
            def leak(inventory, window_s):
                return leakage_energy(inventory, cycles=window_s)
            """}, select={"SIM602"})
        assert [f.code for f in result.findings] == ["SIM602"]
        assert "'s'" in result.findings[0].message


class TestScalingVocabulary:
    """The tech-node vocabulary (nm, V, GHz, mm2) behind wires.scaling."""

    def test_node_vocabulary_is_known(self, lint_tree):
        result = lint_tree({"src/repro/wires/x.py": """\
            # simlint: units(node=nm, return=V)
            def vdd(node):
                return 1.0

            # simlint: units(node=nm, return=GHz)
            def clock(node):
                return 3.7

            # simlint: units(node=nm, return=mm2)
            def area(node):
                return 0.5
            """}, select={"SIM603"})
        assert result.findings == []

    def test_builtin_registry_pins_scaling_api(self, lint_tree):
        # repro.wires.scaling.supply_voltage takes a node in nm; handing
        # it a length in metres is a provable mix-up.
        result = lint_tree({"src/repro/wires/x.py": """\
            from repro.wires.scaling import supply_voltage

            # simlint: units(length_m=m)
            def vdd_for_length(length_m):
                return supply_voltage(node=length_m)
            """}, select={"SIM602"})
        assert [f.code for f in result.findings] == ["SIM602"]
        message = result.findings[0].message
        assert "'m'" in message and "'nm'" in message

    def test_mixing_voltage_and_frequency_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/wires/x.py": """\
            from repro.wires.scaling import (
                clock_frequency_ghz,
                supply_voltage,
            )

            # simlint: units(node=nm)
            def nonsense(node):
                return supply_voltage(node) + clock_frequency_ghz(node)
            """}, select={"SIM601"})
        assert [f.code for f in result.findings] == ["SIM601"]
        message = result.findings[0].message
        assert "'V'" in message and "'GHz'" in message

    def test_matching_node_handoff_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/wires/x.py": """\
            from repro.wires.scaling import (
                link_metal_area_mm2,
                supply_voltage,
            )

            # simlint: units(node=nm, tracks=1)
            def figures(node, tracks):
                vdd = supply_voltage(node)
                area = link_metal_area_mm2(tracks, node)
                return vdd * vdd * area
            """}, select={"SIM601", "SIM602"})
        assert result.findings == []


class TestSIM603UnitDeclarations:
    def test_unknown_unit_is_flagged(self, lint_tree):
        result = lint_tree({"src/repro/wires/x.py": """\
            # simlint: units(length=metres)
            def base_delay(length):
                return 1e-9
            """}, select={"SIM603"})
        assert [f.code for f in result.findings] == ["SIM603"]
        assert "metres" in result.findings[0].message

    def test_known_units_are_fine(self, lint_tree):
        result = lint_tree({"src/repro/wires/x.py": """\
            # simlint: units(length=m, return=s)
            def base_delay(length):
                return 1e-9
            """}, select={"SIM603"})
        assert result.findings == []
