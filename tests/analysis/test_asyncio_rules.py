"""SIM107: asyncio task/cancellation hygiene, positive and negative."""


class TestSIM107DiscardedTask:
    def test_flags_fire_and_forget_create_task(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import asyncio

            async def kick(work):
                asyncio.create_task(work())
            """}, select={"SIM107"})
        assert [f.code for f in result.findings] == ["SIM107"]
        assert "garbage-collected" in result.findings[0].message

    def test_flags_loop_method_form(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import asyncio

            async def kick(work):
                loop = asyncio.get_running_loop()
                loop.create_task(work())
            """}, select={"SIM107"})
        assert [f.code for f in result.findings] == ["SIM107"]

    def test_kept_reference_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import asyncio

            TASKS = set()

            async def kick(work):
                task = asyncio.create_task(work())
                TASKS.add(task)
                task.add_done_callback(TASKS.discard)
                return task
            """}, select={"SIM107"})
        assert result.findings == []

    def test_task_passed_as_argument_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import asyncio

            async def kick(track, work):
                track(asyncio.create_task(work()))
            """}, select={"SIM107"})
        assert result.findings == []

    def test_fires_in_tests_too(self, lint_tree):
        result = lint_tree({"tests/test_x.py": """\
            import asyncio

            async def test_kick(work):
                asyncio.create_task(work())
            """}, select={"SIM107"})
        assert [f.code for f in result.findings] == ["SIM107"]


class TestSIM107SwallowedCancellation:
    def test_flags_swallowed_cancellation(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import asyncio

            async def drain(task):
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            """}, select={"SIM107"})
        assert [f.code for f in result.findings] == ["SIM107"]
        assert "wedges graceful shutdown" in result.findings[0].message

    def test_flags_bare_name_and_tuple_forms(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            from asyncio import CancelledError

            async def drain(task, log):
                try:
                    await task
                except CancelledError:
                    log("cancelled")
                try:
                    await task
                except (RuntimeError, CancelledError):
                    log("either")
            """}, select={"SIM107"})
        assert [f.code for f in result.findings] == ["SIM107", "SIM107"]

    def test_cleanup_then_reraise_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import asyncio

            async def drain(task, release):
                try:
                    await task
                except asyncio.CancelledError:
                    release()
                    raise
            """}, select={"SIM107"})
        assert result.findings == []

    def test_other_exceptions_are_not_flagged(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            async def drain(task, log):
                try:
                    await task
                except RuntimeError as exc:
                    log(exc)
            """}, select={"SIM107"})
        assert result.findings == []

    def test_inline_suppression_with_rationale(self, lint_tree):
        result = lint_tree({"src/repro/service/x.py": """\
            import asyncio

            async def shutdown(task):
                # Top-level shutdown boundary: the loop is about to
                # close, there is nothing left to propagate to.
                try:
                    await task
                except asyncio.CancelledError:  # simlint: disable=SIM107
                    pass
            """}, select={"SIM107"})
        assert result.findings == []


class TestSIM107ServicePackageIsClean:
    def test_real_service_package_passes(self, repo_lint=None):
        from pathlib import Path

        from repro.analysis import lint_paths

        root = Path(__file__).resolve().parents[2]
        service = root / "src" / "repro" / "service"
        result = lint_paths([service], select={"SIM107"}, root=root)
        assert result.findings == []
