"""SIM3xx: exception hygiene fixtures."""


class TestSIM301BareExcept:
    def test_flags_bare_except(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def run(step):
                try:
                    step()
                except:
                    pass
            """}, select={"SIM301"})
        assert [f.code for f in result.findings] == ["SIM301"]

    def test_named_except_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def run(step):
                try:
                    step()
                except ValueError:
                    pass
            """}, select={"SIM301"})
        assert result.findings == []


class TestSIM302BroadExcept:
    def test_flags_swallowed_exception(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def run(step):
                try:
                    step()
                except Exception:
                    return None
            """}, select={"SIM302"})
        assert [f.code for f in result.findings] == ["SIM302"]
        assert "crash-isolation" in result.findings[0].message

    def test_flags_base_exception_in_tuple(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def run(step):
                try:
                    step()
                except (ValueError, BaseException) as exc:
                    return exc
            """}, select={"SIM302"})
        assert [f.code for f in result.findings] == ["SIM302"]

    def test_cleanup_then_reraise_is_exempt(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            import os

            def publish(tmp, final):
                try:
                    os.replace(tmp, final)
                except BaseException:
                    os.unlink(tmp)
                    raise
            """}, select={"SIM302"})
        assert result.findings == []

    def test_specific_exceptions_are_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def run(step):
                try:
                    step()
                except (ValueError, OSError):
                    return None
            """}, select={"SIM302"})
        assert result.findings == []


class TestSIM303KeyErrorForConfig:
    def test_flags_keyerror_in_src(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def lookup(table, model):
                if model not in table:
                    raise KeyError(model)
                return table[model]
            """}, select={"SIM303"})
        assert [f.code for f in result.findings] == ["SIM303"]
        assert "ConfigError" in result.findings[0].message

    def test_config_error_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            class ConfigError(ValueError):
                pass

            def lookup(table, model):
                if model not in table:
                    raise ConfigError(f"unknown model {model}")
                return table[model]
            """}, select={"SIM303"})
        assert result.findings == []

    def test_tests_may_raise_keyerror(self, lint_tree):
        result = lint_tree({"tests/test_x.py": """\
            def fake_lookup(model):
                raise KeyError(model)
            """}, select={"SIM303"})
        assert result.findings == []

    def test_reraising_existing_exception_is_fine(self, lint_tree):
        # `raise` with no operand (propagation) is not a KeyError raise.
        result = lint_tree({"src/repro/core/x.py": """\
            def lookup(table, model):
                try:
                    return table[model]
                except KeyError:
                    raise
            """}, select={"SIM303"})
        assert result.findings == []
