"""SIM4xx: model hygiene fixtures."""


class TestSIM401FrozenSpecs:
    def test_flags_unfrozen_plan_at_decorator_line(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            from dataclasses import dataclass


            @dataclass
            class SweepPlan:
                model: str
            """}, select={"SIM401"})
        assert [f.code for f in result.findings] == ["SIM401"]
        finding = result.findings[0]
        assert "SweepPlan" in finding.message
        assert finding.line == 4  # the @dataclass line, not `class`

    def test_flags_frozen_false(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            from dataclasses import dataclass


            @dataclass(frozen=False, eq=True)
            class WireSpec:
                width: int
            """}, select={"SIM401"})
        assert [f.code for f in result.findings] == ["SIM401"]

    def test_frozen_spec_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class WireSpec:
                width: int
            """}, select={"SIM401"})
        assert result.findings == []

    def test_worker_types_are_not_value_types(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            from dataclasses import dataclass, field


            @dataclass
            class Transfer:
                src: str
                hops: list = field(default_factory=list)
            """}, select={"SIM401"})
        assert result.findings == []

    def test_rule_is_src_only(self, lint_tree):
        result = lint_tree({"tests/test_x.py": """\
            from dataclasses import dataclass


            @dataclass
            class FakePlan:
                model: str
            """}, select={"SIM401"})
        assert result.findings == []


class TestSIM402MutableDefaults:
    def test_flags_literal_and_constructor_defaults(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def run(steps=[], opts=dict(), *, tags={"a"}):
                return steps, opts, tags
            """}, select={"SIM402"})
        assert [f.code for f in result.findings] == (
            ["SIM402", "SIM402", "SIM402"]
        )

    def test_none_default_is_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def run(steps=None, limit=4, name="x"):
                steps = [] if steps is None else steps
                return steps
            """}, select={"SIM402"})
        assert result.findings == []

    def test_fires_in_tests_too(self, lint_tree):
        result = lint_tree({"tests/test_x.py": """\
            def helper(acc=[]):
                return acc
            """}, select={"SIM402"})
        assert [f.code for f in result.findings] == ["SIM402"]


class TestSIM403FloatEquality:
    def test_flags_fractional_equality(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def check(ipc, delta):
                return ipc == 0.95 or delta != -0.5
            """}, select={"SIM403"})
        assert [f.code for f in result.findings] == ["SIM403", "SIM403"]
        assert "0.95" in result.findings[0].message

    def test_whole_valued_sentinels_are_allowed(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def check(util, weight):
                return util == 1.0 or weight == 0.0
            """}, select={"SIM403"})
        assert result.findings == []

    def test_ordering_comparisons_are_fine(self, lint_tree):
        result = lint_tree({"src/repro/core/x.py": """\
            def check(util):
                return 0.25 < util <= 0.75
            """}, select={"SIM403"})
        assert result.findings == []

    def test_rule_is_src_only(self, lint_tree):
        result = lint_tree({"tests/test_x.py": """\
            def test_exact():
                assert 0.5 == 0.5
            """}, select={"SIM403"})
        assert result.findings == []
