"""Baseline round-trips: from_findings -> save -> load -> partition."""

import json

import pytest

from repro.analysis import Baseline, Finding
from repro.analysis.baseline import BaselineError


def finding(code="SIM101", path="src/repro/core/x.py", line=4,
            message="process-global RNG"):
    return Finding(code=code, message=message, path=path, line=line,
                   col=0)


class TestRoundTrip:
    def test_save_load_partition_absorbs(self, tmp_path):
        found = [finding(), finding(code="SIM303", line=9,
                                    message="raising KeyError")]
        Baseline.from_findings(found).save(tmp_path / "b.json")
        loaded = Baseline.load(tmp_path / "b.json")
        new, absorbed = loaded.partition(found)
        assert new == []
        assert absorbed == found

    def test_fingerprint_ignores_line_moves(self, tmp_path):
        Baseline.from_findings([finding(line=4)]).save(tmp_path / "b.json")
        loaded = Baseline.load(tmp_path / "b.json")
        new, absorbed = loaded.partition([finding(line=40)])
        assert new == []
        assert len(absorbed) == 1

    def test_surplus_occurrence_is_new(self, tmp_path):
        Baseline.from_findings([finding()]).save(tmp_path / "b.json")
        loaded = Baseline.load(tmp_path / "b.json")
        new, absorbed = loaded.partition([finding(line=4),
                                          finding(line=8)])
        assert len(absorbed) == 1
        assert len(new) == 1

    def test_duplicate_findings_share_a_counted_entry(self, tmp_path):
        pair = [finding(line=4), finding(line=8)]
        baseline = Baseline.from_findings(pair)
        assert len(baseline.entries) == 1
        (entry,) = baseline.entries.values()
        assert entry["count"] == 2
        baseline.save(tmp_path / "b.json")
        new, absorbed = Baseline.load(tmp_path / "b.json").partition(pair)
        assert new == []
        assert len(absorbed) == 2

    def test_new_entries_are_stamped_todo(self):
        baseline = Baseline.from_findings([finding()])
        (entry,) = baseline.entries.values()
        assert entry["note"] == "TODO: justify"

    def test_saved_file_is_sorted_and_human_readable(self, tmp_path):
        found = [finding(path="src/z.py"), finding(path="src/a.py")]
        Baseline.from_findings(found).save(tmp_path / "b.json")
        data = json.loads((tmp_path / "b.json").read_text())
        assert data["version"] == 1
        paths = [e["path"] for e in data["entries"]]
        assert paths == sorted(paths)
        assert all({"fingerprint", "count", "note"} <= set(e)
                   for e in data["entries"])


class TestMalformedBaselines:
    def test_invalid_json(self, tmp_path):
        (tmp_path / "b.json").write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(tmp_path / "b.json")

    def test_wrong_version(self, tmp_path):
        (tmp_path / "b.json").write_text(
            json.dumps({"version": 99, "entries": []})
        )
        with pytest.raises(BaselineError):
            Baseline.load(tmp_path / "b.json")

    def test_malformed_entry(self, tmp_path):
        (tmp_path / "b.json").write_text(
            json.dumps({"version": 1, "entries": [{"count": 1}]})
        )
        with pytest.raises(BaselineError):
            Baseline.load(tmp_path / "b.json")

    def test_missing_file(self, tmp_path):
        with pytest.raises(BaselineError):
            Baseline.load(tmp_path / "missing.json")


class TestBaselineThroughEngine:
    def test_baselined_findings_do_not_fail_the_run(self, lint_tree):
        files = {"src/repro/core/x.py": """\
            import random

            def draw():
                return random.random()
            """}
        first = lint_tree(files, select={"SIM101"})
        assert not first.ok
        baseline = Baseline.from_findings(first.findings)
        second = lint_tree(files, select={"SIM101"}, baseline=baseline)
        assert second.ok
        assert second.findings == []
        assert len(second.baselined) == 1
