"""Tests for the fetch unit: width, blocks, redirect stalls."""

import pytest

from repro.frontend.fetch import FetchUnit
from repro.workloads.trace import InstructionRecord, OpClass


def alu(pc):
    return InstructionRecord(pc=pc, op=OpClass.IALU, dest=5, srcs=(1,))


def branch(pc, taken, target=0x500000):
    return InstructionRecord(pc=pc, op=OpClass.BRANCH, srcs=(1,),
                             taken=taken, target=target)


def make_fetch(records, **kw):
    return FetchUnit(iter(records), **kw)


class TestFetchWidth:
    def test_fetches_up_to_width(self):
        fetch = make_fetch([alu(0x400000 + 4 * i) for i in range(20)],
                           width=8)
        assert fetch.tick(0) == 8
        assert len(fetch.queue) == 8

    def test_queue_capacity_respected(self):
        fetch = make_fetch([alu(0x400000 + 4 * i) for i in range(100)],
                           width=8, queue_size=10)
        fetch.tick(0)
        fetch.tick(1)
        assert len(fetch.queue) == 10

    def test_stops_after_two_basic_blocks(self):
        """Table 1: fetch width 8 across up to 2 basic blocks."""
        records = []
        for i in range(8):
            if i in (1, 3, 5):
                records.append(branch(0x400000 + 4 * i, taken=False))
            else:
                records.append(alu(0x400000 + 4 * i))
        fetch = make_fetch(records, width=8, max_blocks=2)
        # Predictors start weakly-not-taken, so not-taken branches are
        # predicted correctly and only block counting stops fetch.
        fetched = fetch.tick(0)
        assert fetched == 4  # stops after the second branch

    def test_exhaustion(self):
        fetch = make_fetch([alu(0x400000)])
        assert fetch.tick(0) == 1
        assert fetch.tick(1) == 0
        assert fetch.exhausted


class TestBranchHandling:
    def test_correctly_predicted_not_taken_continues(self):
        records = [branch(0x400000, taken=False)] + [
            alu(0x400004 + 4 * i) for i in range(4)
        ]
        fetch = make_fetch(records)
        assert fetch.tick(0) == 5
        assert not fetch.stalled_for_redirect

    def test_mispredicted_branch_stalls_fetch(self):
        """First-seen taken branch: counters predict not-taken -> redirect."""
        records = [branch(0x400000, taken=True)] + [alu(0x400100)] * 4
        fetch = make_fetch(records)
        assert fetch.tick(0) == 1
        assert fetch.stalled_for_redirect
        assert fetch.queue[0].mispredicted
        assert fetch.tick(1) == 0  # stalled

    def test_redirect_resume_after_refill(self):
        records = [branch(0x400000, taken=True)] + [alu(0x400100)] * 4
        fetch = make_fetch(records, refill_penalty=10)
        fetch.tick(0)
        seq = fetch.queue[0].seq
        fetch.redirect_arrived(seq, cycle=20)
        assert not fetch.stalled_for_redirect
        assert fetch.tick(25) == 0  # still refilling (resume at 30)
        assert fetch.tick(30) == 4

    def test_redirect_for_wrong_branch_ignored(self):
        records = [branch(0x400000, taken=True)] + [alu(0x400100)] * 2
        fetch = make_fetch(records)
        fetch.tick(0)
        fetch.redirect_arrived(999, cycle=5)
        assert fetch.stalled_for_redirect

    def test_btb_miss_on_taken_branch_redirects(self):
        """Train the direction predictor to taken; a fresh BTB entry is
        still missing the first time, forcing a redirect."""
        target = 0x500000
        records = []
        for i in range(6):
            records.append(branch(0x400000, taken=True, target=target))
        fetch = make_fetch(records, refill_penalty=0)
        cycle = 0
        redirects = 0
        while not fetch.exhausted and cycle < 200:
            fetched = fetch.tick(cycle)
            if fetch.stalled_for_redirect:
                redirects += 1
                fetch.redirect_arrived(fetch.queue[-1].seq, cycle)
            fetch.queue.clear()
            cycle += 1
        # Once both direction and target are learned, no more redirects.
        assert redirects >= 1
        assert redirects < 6

    def test_counts_branch_stats(self):
        records = [branch(0x400000 + 8 * i, taken=(i % 2 == 0))
                   for i in range(10)]
        fetch = make_fetch(records, refill_penalty=0, max_blocks=20)
        cycle = 0
        while not fetch.exhausted and cycle < 500:
            fetch.tick(cycle)
            if fetch.stalled_for_redirect:
                fetch.redirect_arrived(fetch.queue[-1].seq, cycle)
            cycle += 1
        assert fetch.predictor.lookups == 10


class TestValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            FetchUnit(iter([]), width=0)
        with pytest.raises(ValueError):
            FetchUnit(iter([]), queue_size=0)
        with pytest.raises(ValueError):
            FetchUnit(iter([]), refill_penalty=-1)
