"""Tests for the branch predictors and BTB (Table 1 front end)."""

import random

import pytest

from repro.frontend.bpred import (
    BimodalPredictor,
    BranchTargetBuffer,
    CombinedPredictor,
    SaturatingCounterTable,
    TwoLevelPredictor,
)


class TestSaturatingCounters:
    def test_counter_saturates_high(self):
        t = SaturatingCounterTable(16, initial=0)
        for _ in range(10):
            t.update(3, True)
        assert t.counter(3) == 3

    def test_counter_saturates_low(self):
        t = SaturatingCounterTable(16, initial=3)
        for _ in range(10):
            t.update(3, False)
        assert t.counter(3) == 0

    def test_hysteresis(self):
        """From strongly-taken, one not-taken flips the counter but not
        the prediction."""
        t = SaturatingCounterTable(16, initial=3)
        t.update(5, False)
        assert t.predict(5)
        t.update(5, False)
        assert not t.predict(5)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            SaturatingCounterTable(100)

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounterTable(16, initial=4)


class TestBimodal:
    def test_learns_biased_branch(self):
        p = BimodalPredictor(1024)
        for _ in range(4):
            p.update(0x400000, True)
        assert p.predict(0x400000)

    def test_distinct_pcs_independent(self):
        p = BimodalPredictor(1024)
        for _ in range(4):
            p.update(0x400000, True)
            p.update(0x400004, False)
        assert p.predict(0x400000)
        assert not p.predict(0x400004)


class TestTwoLevel:
    def test_learns_alternating_pattern(self):
        """A bimodal predictor cannot learn T/N/T/N; the 2-level can."""
        two = TwoLevelPredictor(1024, 12, 1024)
        bim = BimodalPredictor(1024)
        pattern = [True, False] * 200
        correct_two = correct_bim = 0
        for taken in pattern:
            correct_two += two.predict(0x400100) == taken
            correct_bim += bim.predict(0x400100) == taken
            two.update(0x400100, taken)
            bim.update(0x400100, taken)
        assert correct_two > 350  # near-perfect after warmup
        assert correct_bim < 250

    def test_learns_loop_exit_pattern(self):
        """Taken k times then not-taken, repeating: history catches the
        exit for short loops."""
        two = TwoLevelPredictor(1024, 12, 4096)
        outcomes = ([True] * 5 + [False]) * 120
        correct = 0
        for taken in outcomes:
            correct += two.predict(0x400200) == taken
            two.update(0x400200, taken)
        assert correct / len(outcomes) > 0.9

    def test_rejects_zero_history(self):
        with pytest.raises(ValueError):
            TwoLevelPredictor(history_bits=0)


class TestCombined:
    def test_chooser_picks_the_better_component(self):
        p = CombinedPredictor(1024, 1024, 12, 1024, 1024)
        # Alternating pattern: 2-level wins, chooser should migrate.
        for _ in range(300):
            for taken in (True, False):
                p.predict_and_train(0x400300, taken)
        correct = 0
        for taken in (True, False) * 50:
            correct += p.predict(0x400300) == taken
            p.update(0x400300, taken)
        assert correct > 90

    def test_accuracy_tracking(self):
        p = CombinedPredictor(1024, 1024, 12, 1024, 1024)
        for _ in range(100):
            p.predict_and_train(0x400400, True)
        assert p.lookups == 100
        assert p.accuracy > 0.9

    def test_accuracy_with_no_lookups(self):
        assert CombinedPredictor().accuracy == 1.0

    def test_biased_branches_highly_predictable(self):
        p = CombinedPredictor()
        rng = random.Random(1)
        correct = 0
        n = 2000
        for _ in range(n):
            pc = 0x400000 + 4 * rng.randrange(64)
            taken = rng.random() < 0.95
            correct += p.predict_and_train(pc, taken) == taken
        assert correct / n > 0.85


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64, 2)
        assert btb.lookup(0x400000) is None
        btb.install(0x400000, 0x400800)
        assert btb.lookup(0x400000) == 0x400800

    def test_update_existing_entry(self):
        btb = BranchTargetBuffer(64, 2)
        btb.install(0x400000, 0x400800)
        btb.install(0x400000, 0x400900)
        assert btb.lookup(0x400000) == 0x400900

    def test_two_way_associativity(self):
        btb = BranchTargetBuffer(4, 2)
        # Three pcs mapping to the same set: LRU evicts the oldest.
        pcs = [0x1000, 0x1000 + 4 * 4, 0x1000 + 8 * 4]
        btb.install(pcs[0], 1)
        btb.install(pcs[1], 2)
        btb.lookup(pcs[0])  # refresh LRU
        btb.install(pcs[2], 3)
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[1]) is None  # evicted
        assert btb.lookup(pcs[2]) == 3

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(100, 2)
        with pytest.raises(ValueError):
            BranchTargetBuffer(64, 0)
