"""Tests for the clustered-processor cycle loop on tiny hand-made streams."""

import itertools

import pytest

from repro.core.config import InterconnectConfig, ProcessorConfig, wire_counts
from repro.core.processor import ClusteredProcessor
from repro.workloads.trace import InstructionRecord, OpClass


def alu(pc, dest, srcs=()):
    return InstructionRecord(pc=pc, op=OpClass.IALU, dest=dest, srcs=srcs,
                             value_width=32)


def narrow_alu(pc, dest, srcs=()):
    return InstructionRecord(pc=pc, op=OpClass.IALU, dest=dest, srcs=srcs,
                             value_width=8)


def load(pc, dest, addr, srcs=(1,)):
    return InstructionRecord(pc=pc, op=OpClass.LOAD, dest=dest, srcs=srcs,
                             addr=addr, value_width=32)


def store(pc, addr, srcs=(1, 2)):
    return InstructionRecord(pc=pc, op=OpClass.STORE, srcs=srcs, addr=addr)


def make_cpu(records, wires=None, num_clusters=4, repeat=True, **cfg):
    config = ProcessorConfig(num_clusters=num_clusters, **cfg)
    icfg = InterconnectConfig(wires=wires or wire_counts(B=144))
    supply = itertools.cycle(records) if repeat else iter(records)
    return ClusteredProcessor(config, icfg, supply)


class TestBasicExecution:
    def test_independent_alus_commit(self):
        records = [alu(0x400000 + 4 * i, dest=8 + i) for i in range(8)]
        cpu = make_cpu(records)
        stats = cpu.run(100)
        assert stats.committed == 100
        assert stats.ipc > 1.0

    def test_serial_chain_is_slow(self):
        """Every instruction depends on the previous one."""
        records = [alu(0x400000 + 4 * i, dest=9, srcs=(9,))
                   for i in range(8)]
        cpu = make_cpu(records)
        stats = cpu.run(100)
        assert stats.ipc <= 1.05

    def test_parallel_beats_serial(self):
        serial = make_cpu([alu(0x400000, dest=9, srcs=(9,))])
        parallel = make_cpu(
            [alu(0x400000 + 4 * i, dest=8 + i, srcs=(1,)) for i in range(8)]
        )
        s = serial.run(200)
        p = parallel.run(200)
        assert p.ipc > s.ipc * 1.5

    def test_commit_is_in_order_and_complete(self):
        records = [alu(0x400000 + 4 * i, dest=8 + (i % 16)) for i in range(12)]
        cpu = make_cpu(records)
        stats = cpu.run(500)
        assert stats.committed == 500
        assert cpu.stats.cycles > 0


class TestCrossClusterCommunication:
    def test_dependent_pair_in_different_clusters_pays_latency(self):
        """A long chain of two-source instructions forces cross-cluster
        operand transfers over B-Wires."""
        records = [
            alu(0x400000 + 4 * i, dest=8 + (i % 20),
                srcs=(8 + ((i + 7) % 20), 8 + ((i + 13) % 20)))
            for i in range(40)
        ]
        cpu = make_cpu(records)
        stats = cpu.run(400)
        assert stats.cross_cluster_operands > 0
        assert cpu.network.stats.total_transfers() > 0

    def test_doubling_latency_hurts_communication_bound_code(self):
        records = [
            alu(0x400000 + 4 * i, dest=8 + (i % 20),
                srcs=(8 + ((i + 7) % 20), 8 + ((i + 13) % 20)))
            for i in range(40)
        ]
        fast = make_cpu(records).run(500)
        slow = make_cpu(records, latency_scale=3.0).run(500)
        assert slow.ipc < fast.ipc


class TestMemoryPipeline:
    def test_loads_complete_via_cache(self):
        records = [load(0x400000 + 4 * i, dest=8 + i, addr=0x1000 + 8 * i)
                   for i in range(4)]
        cpu = make_cpu(records)
        stats = cpu.run(80)
        assert stats.loads == 80
        assert sum(stats.hit_levels.values()) >= 80

    def test_store_then_commit(self):
        records = [store(0x400000, addr=0x2000, srcs=(1, 2)),
                   alu(0x400004, dest=9)]
        cpu = make_cpu(records)
        stats = cpu.run(60)
        # The stream alternates store/ALU, so half the committed
        # instructions are stores (commit may slightly overshoot the
        # requested count within its last cycle).
        assert stats.stores == stats.committed // 2

    def test_store_load_forwarding_counted(self):
        records = [
            store(0x400000, addr=0x3000, srcs=(1, 2)),
            load(0x400004, dest=9, addr=0x3000),
        ]
        cpu = make_cpu(records)
        cpu.run(100)
        assert cpu.lsq.true_forwards > 0

    def test_partial_pipeline_only_with_lwires(self):
        plain = make_cpu([load(0x400000, dest=9, addr=0x1000)])
        fancy = make_cpu([load(0x400000, dest=9, addr=0x1000)],
                         wires=wire_counts(B=144, L=36))
        assert not plain.lsq.partial_enabled
        assert fancy.lsq.partial_enabled
        fancy.run(50)
        assert fancy.lsq.early_ram_starts > 0
        assert fancy.cache_pipeline.early_starts > 0


class TestNarrowOperandPath:
    def test_narrow_results_use_lwires(self):
        """A hot narrow-producing pc trains the width predictor; its
        cross-cluster copies then ride L-Wires."""
        records = [
            narrow_alu(0x400000 + 4 * i, dest=8 + (i % 20),
                       srcs=(8 + ((i + 7) % 20), 8 + ((i + 13) % 20)))
            for i in range(40)
        ]
        cpu = make_cpu(records, wires=wire_counts(B=144, L=36))
        cpu.run(600)
        from repro.wires import WireClass
        assert cpu.network.stats.transfers_on(WireClass.L) > 0
        assert cpu.narrow_predictor.coverage > 0.5


class TestDeterminism:
    def test_same_input_same_result(self):
        records = [alu(0x400000 + 4 * i, dest=8 + (i % 16),
                       srcs=(8 + ((i + 5) % 16),)) for i in range(32)]
        a = make_cpu(records).run(300)
        b = make_cpu(records).run(300)
        assert a.cycles == b.cycles
        assert a.committed == b.committed


class TestResourceLimits:
    def test_tiny_rob_throttles(self):
        records = [alu(0x400000 + 4 * i, dest=8 + i) for i in range(8)]
        big = make_cpu(records, rob_size=480).run(300)
        small = make_cpu(records, rob_size=8).run(300)
        assert small.ipc <= big.ipc

    def test_run_validates(self):
        cpu = make_cpu([alu(0x400000, dest=9)])
        with pytest.raises(ValueError):
            cpu.run(0)

    def test_max_cycles_bounds_run(self):
        cpu = make_cpu([alu(0x400000, dest=9, srcs=(9,))])
        stats = cpu.run(10_000, max_cycles=50)
        assert stats.cycles <= 50
