"""Property-based tests for the event wheel (the fast engine's heart).

The wheel's contract, as the event core relies on it:

* events scheduled for the same cycle fire in schedule order (FIFO) --
  the scalar core's ``Dict[int, List[fn]]`` firing order, which the
  differential suite's bit-exactness rests on;
* no live event is ever skipped: draining the wheel cycle by cycle
  fires every scheduled-and-not-cancelled event exactly once, at
  exactly its cycle;
* :meth:`next_cycle` never overshoots the earliest live event -- the
  idle-skip in ``EventProcessor._run_until`` jumps straight to it, so
  an overshoot would silently drop a wakeup;
* cancellation revokes exactly the targeted event and never perturbs
  the relative order of that cycle's survivors.

Hypothesis drives random schedule/cancel/pop interleavings against a
transparent reference model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wheel import EventWheel

# An op is ("sched", cycle_offset) | ("cancel", token_index) | ("pop",).
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("sched"), st.integers(min_value=0, max_value=40)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=400)),
        st.tuples(st.just("pop")),
    ),
    max_size=200,
)


class _Recorder:
    """Reference model: every scheduled event, with its fate."""

    def __init__(self):
        self.records = []   # per event: dict(cycle, cancelled, fired_at)
        self.fired_log = []  # (cycle, event index) in firing order

    def make_callback(self, index, cycle):
        self.records.append(
            {"cycle": cycle, "cancelled": False, "fired_at": None}
        )

        def fire(_arg, _index=index):
            record = self.records[_index]
            assert record["fired_at"] is None, "event fired twice"
            record["fired_at"] = "pending"
            self.fired_log.append(_index)

        return fire

    def live_cycles(self):
        return sorted(
            r["cycle"] for r in self.records
            if not r["cancelled"] and r["fired_at"] is None
        )


def _replay(ops):
    """Run an op sequence; returns (wheel, recorder, tokens, now)."""
    wheel = EventWheel()
    recorder = _Recorder()
    tokens = []
    now = 0
    for op in ops:
        if op[0] == "sched":
            cycle = now + op[1]
            index = len(recorder.records)
            tokens.append(
                (wheel.schedule(cycle, recorder.make_callback(index, cycle)),
                 index)
            )
        elif op[0] == "cancel":
            if tokens:
                token, index = tokens[op[1] % len(tokens)]
                if wheel.cancel(token):
                    record = recorder.records[index]
                    assert record["fired_at"] is None, \
                        "cancel succeeded on an already-fired event"
                    record["cancelled"] = True
        else:  # pop: drain the current cycle, then advance
            before = len(recorder.fired_log)
            wheel.fire_due(now)
            for index in recorder.fired_log[before:]:
                record = recorder.records[index]
                assert record["cycle"] == now, \
                    f"event for cycle {record['cycle']} fired at {now}"
                record["fired_at"] = now
            now += 1
    return wheel, recorder, tokens, now


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_no_event_skipped_or_duplicated(ops):
    wheel, recorder, _, now = _replay(ops)
    # Drain everything still pending, guided only by next_cycle().
    while True:
        nxt = wheel.next_cycle()
        if nxt is None:
            break
        assert nxt >= now or not recorder.live_cycles(), \
            "next_cycle moved backwards"
        before = len(recorder.fired_log)
        wheel.fire_due(nxt)
        assert len(recorder.fired_log) > before, \
            "next_cycle pointed at a cycle with nothing to fire"
        for index in recorder.fired_log[before:]:
            recorder.records[index]["fired_at"] = nxt
        now = nxt + 1
    # Every event either fired exactly once at its cycle, or was
    # cancelled and never fired.
    for record in recorder.records:
        if record["cancelled"]:
            assert record["fired_at"] is None
        else:
            assert record["fired_at"] == record["cycle"]
    assert len(wheel) == 0


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_same_cycle_events_fire_in_schedule_order(ops):
    _, recorder, _, _ = _replay(ops)
    # Within the interleaved firing log, events of the same cycle must
    # appear in schedule order (their indices are schedule-ordered).
    last_index_for_cycle = {}
    for index in recorder.fired_log:
        cycle = recorder.records[index]["cycle"]
        previous = last_index_for_cycle.get(cycle)
        assert previous is None or index > previous, (
            f"cycle {cycle}: event {index} fired after event {previous} "
            f"despite being scheduled first"
        )
        last_index_for_cycle[cycle] = index


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_next_cycle_is_exactly_the_earliest_live_event(ops):
    wheel, recorder, _, _ = _replay(ops)
    live = recorder.live_cycles()
    if live:
        assert wheel.next_cycle() == live[0]
    else:
        assert wheel.next_cycle() is None
    assert len(wheel) == len(live)


@settings(max_examples=100, deadline=None)
@given(ops=_OPS)
def test_cancel_is_single_shot(ops):
    wheel, recorder, tokens, _ = _replay(ops)
    # A second cancel of any token must report False; a first cancel
    # succeeds iff the event is still pending.
    for token, index in tokens:
        record = recorder.records[index]
        if record["cancelled"]:
            assert wheel.cancel(token) is False
        elif record["fired_at"] is not None:
            assert wheel.cancel(token) is False


def test_schedule_before_cycle_zero_rejected():
    import pytest

    with pytest.raises(ValueError):
        EventWheel().schedule(-1, lambda _arg: None)


def test_counters_track_lifecycle():
    wheel = EventWheel()
    fired = []
    t1 = wheel.schedule(3, fired.append, "a")
    wheel.schedule(3, fired.append, "b")
    wheel.schedule(5, fired.append, "c")
    assert wheel.scheduled == 3
    assert wheel.cancel(t1)
    assert wheel.cancelled == 1
    assert wheel.fire_due(3) == 1
    assert fired == ["b"]
    assert wheel.next_cycle() == 5
    assert wheel.fire_due(5) == 1
    assert wheel.fired == 2
    assert wheel.next_cycle() is None
