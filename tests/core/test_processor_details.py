"""Focused behaviour tests of the processor's wire-management paths."""

import itertools

from repro.core.config import InterconnectConfig, ProcessorConfig, wire_counts
from repro.core.processor import ClusteredProcessor
from repro.interconnect.message import TransferKind
from repro.interconnect.selection import PolicyFlags
from repro.wires import WireClass
from repro.workloads.trace import InstructionRecord, OpClass


def alu(pc, dest, srcs=(), width=32):
    return InstructionRecord(pc=pc, op=OpClass.IALU, dest=dest, srcs=srcs,
                             value_width=width)


def branch(pc, taken, target=0x500000):
    return InstructionRecord(pc=pc, op=OpClass.BRANCH, srcs=(1,),
                             taken=taken, target=target)


def load(pc, dest, addr):
    return InstructionRecord(pc=pc, op=OpClass.LOAD, dest=dest, srcs=(1,),
                             addr=addr, value_width=32)


def store(pc, addr, srcs=(1, 2)):
    return InstructionRecord(pc=pc, op=OpClass.STORE, srcs=srcs, addr=addr)


def make_cpu(records, wires=None, flags=None, repeat=True, **cfg):
    config = ProcessorConfig(num_clusters=4, **cfg)
    icfg = InterconnectConfig(
        wires=wires or wire_counts(B=144),
        flags=flags or PolicyFlags(),
    )
    supply = itertools.cycle(records) if repeat else iter(records)
    return ClusteredProcessor(config, icfg, supply)


class TestMispredictPath:
    def _mispredict_stream(self):
        """Branches whose direction alternates erratically enough that
        some mispredict, each followed by filler."""
        records = []
        pattern = [True, True, False, True, False, False, True, False]
        for i, taken in enumerate(pattern * 3):
            records.append(branch(0x400000 + 8 * i, taken,
                                  target=0x600000 + 64 * i))
            records.append(alu(0x400004 + 8 * i, dest=8 + (i % 16)))
        return records

    def test_redirects_traverse_the_network(self):
        cpu = make_cpu(self._mispredict_stream())
        stats = cpu.run(400)
        assert stats.redirects > 0
        assert cpu.network.stats.by_kind.get(TransferKind.MISPREDICT,
                                             0) > 0

    def test_mispredict_penalty_at_least_12_cycles(self):
        """Table 1: 'at least 12 cycles'.  A branch with deterministic
        but pattern-free outcomes mispredicts often; each redirect costs
        at least resolve + signal + refill cycles."""
        import random
        rng = random.Random(0)
        records = [branch(0x400000, rng.random() < 0.5,
                          0x500000 + 64 * i) for i in range(64)]
        cpu = make_cpu(records)
        stats = cpu.run(200)
        assert stats.redirects >= 20
        # Redirect stalls dominate: at least 12 cycles per redirect on
        # average (correctly predicted branches add ~1 cycle each).
        assert stats.cycles >= 12 * stats.redirects

    def test_lwire_mispredict_signal_shortens_stall(self):
        stream = self._mispredict_stream()
        base = make_cpu(stream).run(600)
        fast = make_cpu(stream, wires=wire_counts(B=144, L=36)).run(600)
        assert fast.cycles <= base.cycles


class TestPWSteeringPaths:
    def test_ready_at_dispatch_operands_ride_pw(self):
        """Values already sitting in a remote register file when their
        consumer dispatches travel on PW-Wires (the paper's first
        criterion).  A realistic stream triggers the case naturally."""
        from repro.workloads import TraceGenerator, profile
        gen = TraceGenerator(profile("gzip"), seed=42)
        config = ProcessorConfig(num_clusters=4)
        icfg = InterconnectConfig(wires=wire_counts(B=144, PW=288))
        cpu = ClusteredProcessor(config, icfg, gen.stream_forever())
        cpu.prewarm(gen.data_footprint())
        cpu.run(3000, warmup=500)
        assert cpu.network.selector.pw_ready_transfers > 0

    def test_store_data_rides_pw(self):
        records = [store(0x400000, addr=0x2000), alu(0x400004, dest=9)]
        cpu = make_cpu(records, wires=wire_counts(B=144, PW=288))
        cpu.run(200)
        stats = cpu.network.stats
        assert stats.by_kind.get(TransferKind.STORE_DATA, 0) > 0
        assert stats.transfers_on(WireClass.PW) >= stats.by_kind[
            TransferKind.STORE_DATA
        ] * 0.9

    def test_pw_criteria_disabled_all_on_b(self):
        flags = PolicyFlags(pw_ready_operand=False, pw_store_data=False,
                            pw_load_balance=False)
        records = [store(0x400000, addr=0x2000), alu(0x400004, dest=9)]
        cpu = make_cpu(records, wires=wire_counts(B=144, PW=288),
                       flags=flags)
        cpu.run(200)
        assert cpu.network.stats.transfers_on(WireClass.PW) == 0


class TestPartialAddressPath:
    def test_split_addresses_on_lwires(self):
        records = [load(0x400000 + 4 * i, dest=8 + i, addr=0x3000 + 8 * i)
                   for i in range(4)]
        cpu = make_cpu(records, wires=wire_counts(B=144, L=36))
        cpu.run(120)
        assert cpu.network.stats.split_transfers > 0
        assert cpu.lsq.early_ram_starts > 0

    def test_partial_flag_off_means_no_split(self):
        flags = PolicyFlags(lwire_partial_address=False)
        records = [load(0x400000, dest=8, addr=0x3000)]
        cpu = make_cpu(records, wires=wire_counts(B=144, L=36),
                       flags=flags)
        cpu.run(60)
        assert cpu.network.stats.split_transfers == 0
        assert cpu.lsq.early_ram_starts == 0
        assert not cpu.lsq.partial_enabled


class TestNarrowMispredictPath:
    def test_inconsistent_width_pcs_cause_reissues(self):
        """A pc that alternates narrow/wide results saturates then
        deceives the width predictor, exercising the reissue path."""
        records = []
        for i in range(16):
            width = 8 if i % 4 else 32
            records.append(
                InstructionRecord(pc=0x400000, op=OpClass.IALU, dest=8,
                                  srcs=(1,), value_width=width)
            )
            records.append(alu(0x400004 + 4 * i, dest=9 + (i % 8),
                               srcs=(8, 8)))
        cpu = make_cpu(records, wires=wire_counts(B=144, L=36))
        cpu.run(600)
        assert cpu.network.selector.narrow_mispredicts > 0


class TestEnergyAccounting:
    def test_measured_window_excludes_warmup(self):
        records = [alu(0x400000 + 4 * i, dest=8 + (i % 16),
                       srcs=(8 + ((i + 5) % 16),)) for i in range(32)]
        cpu_a = make_cpu(records)
        cpu_a.run(200, warmup=200)
        cpu_b = make_cpu(records)
        cpu_b.run(400, warmup=0)
        assert (cpu_a.network.stats.dynamic_energy()
                < cpu_b.network.stats.dynamic_energy())

    def test_leakage_uses_measured_cycles(self):
        records = [alu(0x400000, dest=8)]
        cpu = make_cpu(records)
        stats = cpu.run(100)
        leak = cpu.network.leakage_energy(stats.cycles)
        # 4 cluster links x 144 + cache link 288 B-Wires.
        expected_per_cycle = (4 * 144 + 288) * 0.55
        assert leak == stats.cycles * expected_per_cycle
