"""Tests for the shared dynamic-instruction record."""

from repro.core.instruction import NEVER, DynInstr, is_producer
from repro.workloads.trace import InstructionRecord, OpClass


def make(seq=0, op=OpClass.IALU, dest=5):
    rec = InstructionRecord(pc=0x400000, op=op, dest=dest, srcs=(1, 2))
    return DynInstr(seq, rec)


class TestLifecycleFlags:
    def test_fresh_instruction(self):
        instr = make()
        assert not instr.issued
        assert not instr.completed
        assert not instr.committed
        assert instr.cluster == -1
        assert instr.issue_cycle == NEVER

    def test_op_properties(self):
        assert make(op=OpClass.LOAD, dest=5).is_load
        assert make(op=OpClass.STORE, dest=-1).is_store
        assert make(op=OpClass.BRANCH, dest=-1).is_branch
        assert not make(op=OpClass.IALU).is_load

    def test_needs_redirect(self):
        b = make(op=OpClass.BRANCH, dest=-1)
        assert not b.needs_redirect
        b.mispredicted = True
        assert b.needs_redirect
        b.mispredicted = False
        b.btb_miss = True
        assert b.needs_redirect


class TestAvailability:
    def test_not_available_until_recorded(self):
        instr = make()
        assert not instr.available_in(0, 100)
        instr.avail_cycle[0] = 50
        assert instr.available_in(0, 50)
        assert instr.available_in(0, 100)
        assert not instr.available_in(0, 49)
        assert not instr.available_in(1, 100)

    def test_waiters_partitioned_by_cluster(self):
        producer = make(0)
        a, b = make(1), make(2)
        producer.add_waiter(0, a)
        producer.add_waiter(2, b, is_data=True)
        assert [w for w, _ in producer.waiters[0]] == [a]
        assert producer.waiters[2] == [(b, True)]


class TestIsProducer:
    def test_none_is_not_producer(self):
        assert not is_producer(None)

    def test_inflight_is_producer(self):
        assert is_producer(make())

    def test_committed_is_not_producer(self):
        instr = make()
        instr.committed = True
        assert not is_producer(instr)
