"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestStaticCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "144 B-Wires" in out
        assert "288 PW-Wires, 36 L-Wires" in out

    def test_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "swim" in out
        assert out.count("\n") >= 23

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "L-Wires" in out and "0.3" in out


class TestRunCommand:
    def test_single_run(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["run", "--model", "VII", "--benchmark", "gzip",
                     "--instructions", "800", "--warmup", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "model VII" in out

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["run", "--model", "XI"])


class TestExperimentCommands:
    def test_figure3_subset(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["figure3", "--benchmarks", "gzip", "mesa",
                     "--instructions", "600", "--warmup", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "paper" in out

    def test_claims_subset(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["claims", "--benchmarks", "gzip",
                     "--instructions", "500", "--warmup", "150"])
        assert code == 0
        assert "Scalar claims" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_window_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.instructions > 0
        assert args.warmup >= 0
        assert args.benchmarks is None
