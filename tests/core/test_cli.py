"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestStaticCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "144 B-Wires" in out
        assert "288 PW-Wires, 36 L-Wires" in out

    def test_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "swim" in out
        assert out.count("\n") >= 23

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "L-Wires" in out and "0.3" in out


class TestRunCommand:
    def test_single_run(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["run", "--model", "VII", "--benchmark", "gzip",
                     "--instructions", "800", "--warmup", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "model VII" in out

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["run", "--model", "XI"])


class TestExperimentCommands:
    def test_figure3_subset(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["figure3", "--benchmarks", "gzip", "mesa",
                     "--instructions", "600", "--warmup", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "paper" in out

    def test_claims_subset(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["claims", "--benchmarks", "gzip",
                     "--instructions", "500", "--warmup", "150"])
        assert code == 0
        assert "Scalar claims" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_window_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.instructions > 0
        assert args.warmup >= 0
        assert args.benchmarks is None
        assert args.workers == 1
        assert args.run_timeout is None
        assert args.max_retries == 0


class TestArgumentValidation:
    def _error_of(self, argv, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        return capsys.readouterr().err

    def test_rejects_zero_workers(self, capsys):
        err = self._error_of(["table3", "--workers", "0"], capsys)
        assert "at least 1" in err and "serial" in err

    def test_rejects_negative_workers(self, capsys):
        err = self._error_of(["table3", "--workers", "-2"], capsys)
        assert "at least 1" in err

    def test_rejects_non_integer_workers(self, capsys):
        err = self._error_of(["table3", "--workers", "two"], capsys)
        assert "whole number" in err and "'two'" in err

    def test_rejects_non_integer_seed(self, capsys):
        err = self._error_of(["run", "--seed", "abc"], capsys)
        assert "integer" in err and "'abc'" in err

    def test_accepts_negative_seed(self):
        args = build_parser().parse_args(["run", "--seed", "-7"])
        assert args.seed == -7

    def test_rejects_non_positive_timeout(self, capsys):
        err = self._error_of(["run", "--run-timeout", "0"], capsys)
        assert "positive" in err
        err = self._error_of(["run", "--run-timeout", "soon"], capsys)
        assert "seconds" in err

    def test_rejects_negative_retries(self, capsys):
        err = self._error_of(["run", "--max-retries", "-1"], capsys)
        assert "non-negative" in err

    def test_rejects_malformed_fault_spec(self, capsys):
        err = self._error_of(["run", "--fault-spec", "kill=L@c0"], capsys)
        assert "CLASS@link@cycle" in err

    def test_rejects_unknown_fault_clause(self, capsys):
        err = self._error_of(["run", "--fault-spec", "zap=1"], capsys)
        assert "unknown fault clause" in err

    def test_fault_spec_canonicalized(self):
        args = build_parser().parse_args(
            ["run", "--fault-spec", "kill=L@c0@100; kill=B@c1@50"])
        assert args.fault_spec == "kill=B@c1@50;kill=L@c0@100"


class TestFaultCommands:
    def test_run_with_fault_spec_prints_degradation(self, capsys,
                                                    monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["run", "--model", "X", "--benchmark", "gzip",
                     "--instructions", "800", "--warmup", "200",
                     "--fault-spec", "kill=L@*@100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults (kill=L@*@100)" in out
        assert "planes killed" in out

    def test_faults_subcommand_renders_table(self, capsys, monkeypatch,
                                             tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["faults", "--benchmarks", "gzip",
                     "--instructions", "500", "--warmup", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "degradation sweep" in out
        assert "fault-free" in out
        assert "L-plane kill" in out
