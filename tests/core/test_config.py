"""Tests for processor/interconnect configuration (Table 1)."""

import pytest

from repro.core.config import (
    InterconnectConfig,
    ProcessorConfig,
    baseline_interconnect,
    wire_counts,
)
from repro.interconnect.topology import CrossbarTopology, HierarchicalTopology
from repro.wires import WireClass


class TestTable1Defaults:
    """Table 1 of the paper, parameter by parameter."""

    def test_front_end(self):
        cfg = ProcessorConfig()
        assert cfg.fetch_queue_size == 64
        assert cfg.fetch_width == 8
        assert cfg.max_fetch_blocks == 2

    def test_window(self):
        cfg = ProcessorConfig()
        assert cfg.rob_size == 480
        assert cfg.issue_queue_size == 15   # per cluster, int and fp each
        assert cfg.regfile_size == 32       # per cluster, int and fp each

    def test_memory_system(self):
        h = ProcessorConfig().hierarchy
        assert h.l1_size_bytes == 32 * 1024
        assert h.l1_assoc == 4
        assert h.l1_latency == 6
        assert h.l1_banks == 4              # 4-way word-interleaved
        assert h.l2_size_bytes == 8 * 1024 * 1024
        assert h.l2_latency == 30
        assert h.mem_latency == 300
        assert h.tlb_entries == 128
        assert h.page_size == 8192

    def test_mispredict_penalty_at_least_12(self):
        """Refill (10) + branch resolution + 2-cycle B-Wire redirect
        >= 12 cycles."""
        cfg = ProcessorConfig()
        assert cfg.frontend_refill + 2 >= 12

    def test_icache(self):
        cfg = ProcessorConfig()
        assert cfg.icache_size_kb == 32
        assert cfg.icache_assoc == 2


class TestTopologySelection:
    def test_four_clusters_use_crossbar(self):
        topo = ProcessorConfig(num_clusters=4).build_topology()
        assert isinstance(topo, CrossbarTopology)

    def test_sixteen_clusters_use_hierarchy(self):
        topo = ProcessorConfig(num_clusters=16).build_topology()
        assert isinstance(topo, HierarchicalTopology)
        assert topo.num_groups == 4

    def test_latency_scale_propagates(self):
        topo = ProcessorConfig(latency_scale=2.0).build_topology()
        assert topo.path("c0", "c1").latency[WireClass.B] == 4


class TestInterconnectConfig:
    def test_baseline_is_model_i(self):
        cfg = baseline_interconnect()
        assert cfg.wires == {WireClass.B: 144}
        assert cfg.describe() == "144 B-Wires"

    def test_wire_counts_helper(self):
        assert wire_counts(B=144, L=36) == {
            WireClass.B: 144, WireClass.L: 36,
        }

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            InterconnectConfig(wires={})

    def test_composition_roundtrip(self):
        cfg = InterconnectConfig(wires=wire_counts(B=144, PW=288, L=36))
        comp = cfg.build_composition()
        assert comp.plane(WireClass.PW).width == 144


class TestValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ProcessorConfig(num_clusters=0)
        with pytest.raises(ValueError):
            ProcessorConfig(rob_size=0)
        with pytest.raises(ValueError):
            ProcessorConfig(latency_scale=0.0)
