"""Tests for the Table 3/4 normalization arithmetic.

The paper's own numbers provide exact fixtures: plugging Table 3's
relative IPC / dynamic / leakage values into the normalization must
regenerate its processor-energy and ED^2 columns.
"""

import pytest

from repro.core.metrics import (
    BenchmarkRun,
    ModelResult,
    RelativeMetrics,
    relative_metrics,
)


def run(bench="x", instructions=1000, cycles=1000, dyn=100.0, lkg=100.0):
    return BenchmarkRun(benchmark=bench, instructions=instructions,
                        cycles=cycles, interconnect_dynamic=dyn,
                        interconnect_leakage=lkg)


def rm(ipc_ratio=1.0, dyn=1.0, lkg=1.0):
    """RelativeMetrics with given relative values (baseline IPC = 1)."""
    return RelativeMetrics(
        model="T", description="", relative_metal_area=1.0,
        am_ipc=ipc_ratio, relative_dynamic=dyn, relative_leakage=lkg,
        relative_cycles=1.0 / ipc_ratio,
    )


class TestBenchmarkRun:
    def test_ipc(self):
        assert run(instructions=500, cycles=1000).ipc == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            run(instructions=0)
        with pytest.raises(ValueError):
            run(cycles=0)

    def test_extra_stats(self):
        r = BenchmarkRun(benchmark="x", instructions=10, cycles=10,
                         interconnect_dynamic=1.0, interconnect_leakage=1.0,
                         extra=(("redirects", 3.0),))
        assert r.extra_stats()["redirects"] == 3.0


class TestModelResult:
    def test_am_ipc_is_arithmetic_mean(self):
        result = ModelResult(model="I", runs=(
            run("a", 1000, 1000), run("b", 1000, 2000),
        ))
        assert result.am_ipc == pytest.approx((1.0 + 0.5) / 2)

    def test_totals(self):
        result = ModelResult(model="I", runs=(
            run("a", dyn=10, lkg=20), run("b", dyn=30, lkg=40),
        ))
        assert result.total_dynamic == 40
        assert result.total_leakage == 60

    def test_run_for(self):
        result = ModelResult(model="I", runs=(run("a"), run("b")))
        assert result.run_for("b").benchmark == "b"
        with pytest.raises(KeyError):
            result.run_for("zzz")

    def test_needs_runs(self):
        with pytest.raises(ValueError):
            ModelResult(model="I", runs=())


class TestPaperArithmetic:
    """Fixtures straight out of Table 3 (10% interconnect share)."""

    def test_model_ii_row(self):
        """IPC 0.92 vs 0.95, dyn 52, lkg 112 -> energy 97, ED^2 103.4."""
        m = RelativeMetrics(
            model="II", description="288 PW-Wires",
            relative_metal_area=1.0, am_ipc=0.92,
            relative_dynamic=0.52, relative_leakage=1.12,
            relative_cycles=0.95 / 0.92,
        )
        assert m.processor_energy(0.10) == pytest.approx(97.0, abs=0.5)
        assert m.ed2(0.10) == pytest.approx(103.4, abs=0.7)

    def test_model_iv_row(self):
        """IPC 0.98, dyn 99, lkg 194 -> energy 103, ED^2 96.6."""
        m = RelativeMetrics(
            model="IV", description="288 B-Wires",
            relative_metal_area=2.0, am_ipc=0.98,
            relative_dynamic=0.99, relative_leakage=1.94,
            relative_cycles=0.95 / 0.98,
        )
        assert m.processor_energy(0.10) == pytest.approx(103.0, abs=0.5)
        assert m.ed2(0.10) == pytest.approx(96.6, abs=0.7)

    def test_model_vii_row(self):
        """IPC 0.99, dyn 105, lkg 130 -> energy 101, ED^2 93.3."""
        m = RelativeMetrics(
            model="VII", description="144 B-Wires, 36 L-Wires",
            relative_metal_area=2.0, am_ipc=0.99,
            relative_dynamic=1.05, relative_leakage=1.30,
            relative_cycles=0.95 / 0.99,
        )
        assert m.processor_energy(0.10) == pytest.approx(101.25, abs=0.5)
        assert m.ed2(0.10) == pytest.approx(93.3, abs=0.7)

    def test_model_iii_20pct_row(self):
        """At 20% interconnect share Table 3 lists ED^2 92.1 for III."""
        m = RelativeMetrics(
            model="III", description="",
            relative_metal_area=1.5, am_ipc=0.96,
            relative_dynamic=0.61, relative_leakage=0.90,
            relative_cycles=0.95 / 0.96,
        )
        assert m.ed2(0.20) == pytest.approx(92.1, abs=0.8)

    def test_baseline_is_100(self):
        m = rm()
        assert m.processor_energy(0.10) == pytest.approx(100.0)
        assert m.ed2(0.10) == pytest.approx(100.0)
        assert m.ed2(0.20) == pytest.approx(100.0)


class TestRelativeMetrics:
    def test_normalization_against_baseline(self):
        baseline = ModelResult(model="I", runs=(
            run("a", 1000, 1000, dyn=100, lkg=100),
        ))
        other = ModelResult(model="II", runs=(
            run("a", 1000, 1250, dyn=52, lkg=120),
        ))
        m = relative_metrics(other, baseline)
        assert m.relative_dynamic == pytest.approx(0.52)
        assert m.relative_leakage == pytest.approx(1.2)
        assert m.relative_cycles == pytest.approx(1.25)

    def test_requires_same_benchmarks(self):
        a = ModelResult(model="I", runs=(run("a"),))
        b = ModelResult(model="II", runs=(run("b"),))
        with pytest.raises(ValueError):
            relative_metrics(b, a)

    def test_fraction_bounds(self):
        m = rm()
        with pytest.raises(ValueError):
            m.processor_energy(0.0)
        with pytest.raises(ValueError):
            m.processor_energy(1.0)

    def test_energy_monotone_in_interconnect_share(self):
        """A power-hungry interconnect hurts more when it is a larger
        share of chip energy."""
        hungry = rm(dyn=2.0, lkg=2.0)
        assert hungry.processor_energy(0.2) > hungry.processor_energy(0.1)

    def test_ed2_penalizes_slowdown_quadratically(self):
        slow = rm(ipc_ratio=0.5)
        assert slow.ed2(0.10) == pytest.approx(100 * 4.0)
