"""Differential suite: the event engine is bit-exact with the scalar tree.

The fast engine's correctness contract is *equality of the measured
numbers*: for any (model, benchmark, topology, fault spec, telemetry)
combination, ``simulate_benchmark(engine="event")`` must return a
:class:`BenchmarkRun` that compares equal -- field for field, including
the extra-stats tuple with its operand/degradation counters -- to the
scalar reference's.  These tests pin that contract across the
dimensions the engines diverge on internally: wire compositions (which
planes exist drives selection), cluster counts (4 vs the paper's 16,
which flips the vectorized-steering path), fault injection (which
forces the network onto its scalar fallback paths), telemetry (whose
event stream must also match, event for event) and memory-dependence
speculation (which exercises the fast LSQ's wake filtering).

Runs here are short -- the point is covering engine-divergent paths,
not reproducing paper numbers (the tier-1 suites do that on the scalar
tree, and equality transfers them to the fast engine for free).
"""

import os

import pytest

from repro.clusters.cluster import FU_POOL
from repro.core.config import ProcessorConfig
from repro.core.models import MODEL_NAMES, model
from repro.core.simulation import ENGINES, _resolve_engine, simulate_benchmark
from repro.telemetry import RingBufferSink, Telemetry
from repro.workloads import fastops

INSTRUCTIONS = 800
WARMUP = 200


def run_pair(model_name="X", benchmark="gzip", *, num_clusters=4,
             fault_spec=None, telemetry=False, config=None,
             instructions=INSTRUCTIONS, warmup=WARMUP, seed=42):
    """One (scalar, event) run pair plus their telemetry handles."""
    results = []
    for engine in ENGINES:
        tel = (Telemetry(sink=RingBufferSink(capacity=None))
               if telemetry else None)
        run = simulate_benchmark(
            model(model_name).config, benchmark,
            instructions=instructions, warmup=warmup,
            num_clusters=num_clusters, seed=seed, config=config,
            fault_spec=fault_spec, telemetry=tel, engine=engine,
        )
        results.append((run, tel))
    (scalar, scalar_tel), (event, event_tel) = results
    return scalar, event, scalar_tel, event_tel


def assert_runs_equal(scalar, event):
    """Equality with a readable per-field diff on failure."""
    if scalar == event:
        return
    diffs = []
    for field in ("benchmark", "instructions", "cycles",
                  "interconnect_dynamic", "interconnect_leakage"):
        a, b = getattr(scalar, field), getattr(event, field)
        if a != b:
            diffs.append(f"{field}: scalar={a!r} event={b!r}")
    a_extra, b_extra = dict(scalar.extra), dict(event.extra)
    for key in sorted(set(a_extra) | set(b_extra)):
        a, b = a_extra.get(key), b_extra.get(key)
        if a != b:
            diffs.append(f"extra[{key}]: scalar={a!r} event={b!r}")
    pytest.fail("engines diverged:\n  " + "\n  ".join(diffs))


class TestHealthyRuns:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_every_model_matches(self, name):
        scalar, event, _, _ = run_pair(model_name=name)
        assert_runs_equal(scalar, event)

    @pytest.mark.parametrize("bench", ["gzip", "art", "mcf", "gcc"])
    def test_benchmarks_match(self, bench):
        scalar, event, _, _ = run_pair(benchmark=bench)
        assert_runs_equal(scalar, event)

    @pytest.mark.parametrize("name", ["III", "X"])
    def test_sixteen_clusters_match(self, name):
        # 16 clusters crosses VectorSteering.NUMPY_MIN_CLUSTERS, so this
        # pins the numpy scoring path against the scalar heuristic.
        scalar, event, _, _ = run_pair(model_name=name, num_clusters=16)
        assert_runs_equal(scalar, event)

    def test_different_seed_matches(self):
        scalar, event, _, _ = run_pair(seed=7)
        assert_runs_equal(scalar, event)

    def test_memory_dependence_speculation_matches(self):
        config = ProcessorConfig(num_clusters=4,
                                 memory_dependence_speculation=True)
        scalar, event, _, _ = run_pair(config=config)
        assert_runs_equal(scalar, event)


class TestFaultedRuns:
    """Fault injection forces the network's scalar fallback paths."""

    @pytest.mark.parametrize("spec", [
        "kill=B@*@600",
        "kill=PW@*@500",
        "kill=L@c0@400",
        "ber=2e-4",
        "derate=PW:1.3,B:1.1",
        "kill=B@*@600; ber=1e-4; retries=2",
    ])
    def test_fault_specs_match(self, spec):
        scalar, event, _, _ = run_pair(fault_spec=spec)
        assert_runs_equal(scalar, event)

    def test_degraded_sixteen_clusters_match(self):
        scalar, event, _, _ = run_pair(model_name="X", num_clusters=16,
                                       fault_spec="kill=PW@*@500")
        assert_runs_equal(scalar, event)


class TestTelemetry:
    def test_event_streams_identical(self):
        scalar, event, scalar_tel, event_tel = run_pair(telemetry=True)
        assert_runs_equal(scalar, event)
        assert scalar_tel.events() == event_tel.events()

    def test_metrics_snapshots_identical(self):
        _, _, scalar_tel, event_tel = run_pair(telemetry=True)
        assert (scalar_tel.metrics.snapshot()
                == event_tel.metrics.snapshot())

    def test_traced_run_equals_untraced_run(self):
        # Telemetry observes without perturbing -- on both engines.
        traced, traced_event, _, _ = run_pair(telemetry=True)
        untraced, untraced_event, _, _ = run_pair(telemetry=False)
        assert traced == untraced
        assert traced_event == untraced_event

    def test_faulted_event_streams_identical(self):
        scalar, event, scalar_tel, event_tel = run_pair(
            fault_spec="kill=B@*@600; ber=1e-4", telemetry=True)
        assert_runs_equal(scalar, event)
        assert scalar_tel.events() == event_tel.events()


class TestEngineResolution:
    def test_explicit_argument_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "event")
        assert _resolve_engine("scalar") == "scalar"

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "event")
        assert _resolve_engine(None) == "event"
        monkeypatch.delenv("REPRO_ENGINE")
        assert _resolve_engine(None) == "scalar"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            _resolve_engine("warp")

    def test_cli_does_not_leak_engine_override(self):
        from repro.__main__ import main

        assert "REPRO_ENGINE" not in os.environ
        main(["models"])
        assert "REPRO_ENGINE" not in os.environ


def test_fastops_fu_pool_mirrors_cluster_table():
    # fastops duplicates FU_POOL to avoid a workloads -> clusters
    # dependency cycle; this is the pin promised in its comment.
    assert fastops._FU_POOL == FU_POOL
