"""Tests for the simulation drivers."""

import pytest

from repro.core.metrics import ModelResult
from repro.core.models import model
from repro.core.simulation import (
    build_processor,
    simulate_benchmark,
    simulate_model,
)


class TestBuildProcessor:
    def test_builds_and_prewarms(self):
        cpu = build_processor(model("I").config, "gzip")
        # Prewarm leaves the benchmark's working set resident in L2.
        assert cpu.hierarchy.l2.contains(0x1000_0000)

    def test_cluster_count(self):
        cpu = build_processor(model("I").config, "gzip", num_clusters=16)
        assert len(cpu.clusters) == 16

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError):
            build_processor(model("I").config, "quake3")


class TestSimulateBenchmark:
    def test_returns_measured_run(self):
        run = simulate_benchmark(model("I").config, "gzip",
                                 instructions=1500, warmup=500)
        assert run.benchmark == "gzip"
        assert run.instructions >= 1500
        assert run.cycles > 0
        assert run.interconnect_dynamic > 0
        assert run.interconnect_leakage > 0
        assert 0.05 < run.ipc < 8.0

    def test_warmup_not_measured(self):
        """Measured cycles must reflect only the measurement window."""
        short = simulate_benchmark(model("I").config, "gzip",
                                   instructions=1000, warmup=2000)
        assert short.instructions < 1500 + 500

    def test_seed_reproducibility(self):
        a = simulate_benchmark(model("I").config, "mesa",
                               instructions=1000, warmup=200, seed=5)
        b = simulate_benchmark(model("I").config, "mesa",
                               instructions=1000, warmup=200, seed=5)
        assert a.cycles == b.cycles
        assert a.interconnect_dynamic == b.interconnect_dynamic

    def test_extra_stats_present(self):
        run = simulate_benchmark(model("VII").config, "gzip",
                                 instructions=1000, warmup=300)
        extra = run.extra_stats()
        for key in ("redirects", "loads", "stores", "false_dependences",
                    "narrow_coverage", "early_ram_starts"):
            assert key in extra
        assert extra["early_ram_starts"] > 0  # L-Wires enable the pipeline


class TestSimulateModel:
    def test_subset_of_benchmarks(self):
        result = simulate_model(model("I"), benchmarks=("gzip", "mesa"),
                                instructions=800, warmup=200)
        assert isinstance(result, ModelResult)
        assert {r.benchmark for r in result.runs} == {"gzip", "mesa"}
        assert result.am_ipc > 0
