"""Tests for the ten interconnect models of Tables 3 and 4."""

import pytest

from repro.core.models import (
    MODEL_NAMES,
    PAPER_METAL_AREA,
    all_models,
    model,
)
from repro.wires import WireClass


class TestModelDefinitions:
    def test_ten_models(self):
        assert len(MODEL_NAMES) == 10
        assert len(all_models()) == 10

    def test_model_i_is_baseline(self):
        assert model("I").config.wires == {WireClass.B: 144}

    def test_model_descriptions(self):
        assert model("I").description == "144 B-Wires"
        assert model("II").description == "288 PW-Wires"
        assert model("III").description == "144 PW-Wires, 36 L-Wires"
        assert model("IV").description == "288 B-Wires"
        assert model("V").description == "144 B-Wires, 288 PW-Wires"
        assert model("VI").description == "288 PW-Wires, 36 L-Wires"
        assert model("VII").description == "144 B-Wires, 36 L-Wires"
        assert model("VIII").description == "432 B-Wires"
        assert model("IX").description == "288 B-Wires, 36 L-Wires"
        assert model("X").description == (
            "144 B-Wires, 288 PW-Wires, 36 L-Wires"
        )

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            model("XI")


class TestMetalArea:
    """The paper's 'Relative Metal Area' column must be *derivable* from
    Table 2's per-wire area factors -- a consistency check between the
    paper's Sections 3 and 5."""

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_derived_area_matches_paper(self, name):
        assert model(name).relative_metal_area() == pytest.approx(
            PAPER_METAL_AREA[name]
        )

    def test_lwire_budget_rule(self):
        """36 L-Wires fit exactly where 144 B-Wires fit (Section 4:
        '18 L-Wires occupy the same metal area as 72 B-Wires')."""
        b_area = 144 * 2.0
        l_area = 36 * 8.0
        assert b_area == l_area


class TestModelFamilies:
    def test_same_area_groups(self):
        groups = {
            1.0: ("I", "II"),
            1.5: ("III",),
            2.0: ("IV", "V", "VI", "VII"),
            3.0: ("VIII", "IX", "X"),
        }
        for area, names in groups.items():
            for name in names:
                assert model(name).relative_metal_area() == pytest.approx(area)

    def test_heterogeneous_models_have_multiple_planes(self):
        for name in ("III", "V", "VI", "VII", "IX", "X"):
            assert len(model(name).config.wires) >= 2

    def test_homogeneous_models_have_one_plane(self):
        for name in ("I", "II", "IV", "VIII"):
            assert len(model(name).config.wires) == 1
