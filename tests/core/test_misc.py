"""Coverage for measurement control, config overrides, and counters."""

import itertools

from repro.core.config import InterconnectConfig, ProcessorConfig, wire_counts
from repro.core.models import model
from repro.core.processor import ClusteredProcessor
from repro.core.simulation import build_processor, simulate_benchmark
from repro.frontend.fetch import FetchUnit
from repro.workloads.trace import InstructionRecord, OpClass


def alu(pc, dest, srcs=()):
    return InstructionRecord(pc=pc, op=OpClass.IALU, dest=dest, srcs=srcs,
                             value_width=32)


def make_cpu(records, **cfg):
    config = ProcessorConfig(num_clusters=4, **cfg)
    icfg = InterconnectConfig(wires=wire_counts(B=144))
    return ClusteredProcessor(config, icfg, itertools.cycle(records))


class TestMeasurementControl:
    def test_reset_measurement_zeroes_stats(self):
        cpu = make_cpu([alu(0x400000 + 4 * i, dest=8 + i) for i in range(8)])
        cpu.run(100)
        cpu.reset_measurement()
        assert cpu.stats.committed == 0
        assert cpu.stats.cycles == 0
        assert cpu.network.stats.total_transfers() == 0

    def test_warmup_then_measure(self):
        records = [alu(0x400000 + 4 * i, dest=8 + i) for i in range(8)]
        cpu = make_cpu(records)
        stats = cpu.run(100, warmup=50)
        assert 100 <= stats.committed < 160
        # Architecture state persists across the reset.
        assert cpu.cycle > stats.cycles


class TestFetchStall:
    def test_stall_until_blocks_fetch(self):
        fetch = FetchUnit(iter([alu(0x400000 + 4 * i, dest=5)
                                for i in range(20)]))
        fetch.stall_until(10)
        assert fetch.tick(5) == 0
        assert fetch.tick(10) > 0

    def test_stall_until_never_moves_backwards(self):
        fetch = FetchUnit(iter([alu(0x400000, dest=5)]))
        fetch.stall_until(10)
        fetch.stall_until(3)
        assert fetch.tick(9) == 0


class TestConfigOverride:
    def test_simulate_benchmark_accepts_config(self):
        cfg = ProcessorConfig(num_clusters=4,
                              memory_dependence_speculation=True)
        run = simulate_benchmark(model("I").config, "gzip",
                                 instructions=600, warmup=150, config=cfg)
        assert run.ipc > 0

    def test_sixteen_cluster_processor_end_to_end(self):
        cpu = build_processor(model("X").config, "mesa", num_clusters=16)
        stats = cpu.run(1200, warmup=300)
        assert stats.committed >= 1200
        assert len(cpu.clusters) == 16


class TestSelectorCounters:
    def test_pw_rule_counters_populate(self):
        cpu = build_processor(model("V").config, "gzip")
        cpu.run(2500, warmup=500)
        selector = cpu.network.selector
        assert selector.pw_store_transfers > 0
        # Ready-operand and diverted traffic occur on realistic streams.
        assert selector.pw_ready_transfers >= 0
        total_pw_rules = (selector.pw_ready_transfers
                          + selector.pw_store_transfers
                          + selector.pw_diverted_transfers)
        assert total_pw_rules > 0

    def test_operand_narrow_share_tracked(self):
        cpu = build_processor(model("I").config, "gzip")
        cpu.run(2500, warmup=500)
        selector = cpu.network.selector
        assert selector.operand_transfers > 0
        assert 0 <= selector.operand_narrow <= selector.operand_transfers


class TestPrewarm:
    def test_prewarm_loads_working_set_into_l2(self):
        cpu = build_processor(model("I").config, "gzip")
        # gzip's working set is 256 KB starting at DATA_BASE.
        assert cpu.hierarchy.l2.contains(0x1000_0000)
        assert cpu.hierarchy.l2.contains(0x1000_0000 + 255 * 1024)
        # The stack region lands in L1 as well.
        assert cpu.hierarchy.l1.contains(0x7FF0_0000)

    def test_prewarm_empty_footprint_is_noop(self):
        cpu = make_cpu([alu(0x400000, dest=8)])
        cpu.prewarm([])
        assert cpu.hierarchy.l1.accesses == 0
