"""Trace-event model: kinds, categories, attribute handling."""

import pytest

from repro.telemetry import (
    ALL_CATEGORIES,
    EVENT_CATEGORY,
    EventKind,
    TraceEvent,
    make_event,
)


class TestEventKinds:
    def test_every_kind_has_a_category(self):
        assert set(EVENT_CATEGORY) == set(EventKind)

    def test_acceptance_categories_exist(self):
        """The categories the CI trace check requires are all mapped."""
        for category in ("wire-selection", "overflow", "fault", "cache"):
            assert category in ALL_CATEGORIES

    def test_overflow_covers_both_divert_and_spill(self):
        assert EVENT_CATEGORY[EventKind.LB_DIVERT] == "overflow"
        assert EVENT_CATEGORY[EventKind.STEER_OVERFLOW] == "overflow"

    def test_values_are_stable_snake_case(self):
        for kind in EventKind:
            assert kind.value == kind.value.lower()
            assert " " not in kind.value


class TestTraceEvent:
    def test_attrs_sorted_and_readable(self):
        event = make_event(7, EventKind.WIRE_SELECTED,
                           {"reason": "bulk", "kind": "operand"})
        assert event.cycle == 7
        assert event.attrs == (("kind", "operand"), ("reason", "bulk"))
        assert event.attr("reason") == "bulk"
        assert event.attr("missing", "fallback") == "fallback"

    def test_no_attrs(self):
        event = make_event(0, EventKind.RUN_END)
        assert event.attrs == ()

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            make_event(-1, EventKind.RUN_START)

    def test_category_property(self):
        assert make_event(1, EventKind.PLANE_KILL).category == "fault"
        assert make_event(1, EventKind.CACHE_ACCESS).category == "cache"

    def test_to_json_round_trippable(self):
        event = make_event(12, EventKind.LB_DIVERT,
                           {"from": "B", "to": "PW"})
        data = event.to_json()
        assert data == {
            "cycle": 12,
            "kind": "lb_divert",
            "category": "overflow",
            "attrs": {"from": "B", "to": "PW"},
        }

    def test_frozen(self):
        event = make_event(1, EventKind.RUN_START)
        with pytest.raises(AttributeError):
            event.cycle = 2
