"""Acceptance tests: telemetry is observe-only and traces are well-formed.

Two pinned properties:

* enabling telemetry changes NO reproduced metric -- a traced run's
  :class:`BenchmarkRun` equals the untraced run's, field for field;
* a traced simulation's exported Chrome trace passes schema validation,
  carries the required categories (wire-selection, overflow, fault,
  cache) and has monotonically non-decreasing cycle timestamps.
"""

import pytest

from repro.core.models import model
from repro.core.simulation import simulate_benchmark
from repro.telemetry import (
    RingBufferSink,
    Telemetry,
    chrome_trace,
    instant_timestamps,
    trace_categories,
    validate_chrome_trace,
)

WINDOW = dict(instructions=2000, warmup=500)


def _traced(model_name="X", fault_spec="kill=L@*@200", **kwargs):
    telemetry = Telemetry(sink=RingBufferSink(capacity=None))
    run = simulate_benchmark(
        model(model_name).config, "gzip", fault_spec=fault_spec,
        telemetry=telemetry, **WINDOW, **kwargs,
    )
    return run, telemetry


class TestObserveOnly:
    def test_traced_equals_untraced(self):
        traced, _ = _traced()
        untraced = simulate_benchmark(
            model("X").config, "gzip", fault_spec="kill=L@*@200",
            **WINDOW,
        )
        assert traced == untraced

    def test_traced_equals_untraced_healthy(self):
        traced, _ = _traced(fault_spec=None)
        untraced = simulate_benchmark(model("X").config, "gzip", **WINDOW)
        assert traced == untraced

    def test_tracing_is_repeatable(self):
        _, tel_a = _traced()
        _, tel_b = _traced()
        assert tel_a.events() == tel_b.events()
        assert tel_a.metrics.snapshot() == tel_b.metrics.snapshot()


class TestTraceContents:
    @pytest.fixture(scope="class")
    def traced(self):
        return _traced()

    def test_required_categories_present(self, traced):
        _, telemetry = traced
        trace = chrome_trace(telemetry.events())
        categories = trace_categories(trace)
        for required in ("wire-selection", "overflow", "fault", "cache",
                         "run"):
            assert required in categories

    def test_trace_validates(self, traced):
        _, telemetry = traced
        assert validate_chrome_trace(chrome_trace(telemetry.events())) == []

    def test_cycle_timestamps_monotonic(self, traced):
        _, telemetry = traced
        events = telemetry.events()
        cycles = [e.cycle for e in events]
        assert cycles == sorted(cycles)
        assert all(c >= 0 for c in cycles)
        stamps = instant_timestamps(chrome_trace(events))
        assert stamps == sorted(stamps)

    def test_counters_match_event_stream(self, traced):
        """Registry counters agree with the buffered event stream."""
        _, telemetry = traced
        from repro.telemetry import EventKind

        snapshot = telemetry.metrics.snapshot()
        events = telemetry.events()
        kills = sum(1 for e in events if e.kind is EventKind.PLANE_KILL)
        assert snapshot["faults.plane_kills"] == kills
        selected = sum(1 for e in events
                       if e.kind is EventKind.WIRE_SELECTED)
        by_reason = sum(count for name, count in snapshot.items()
                        if name.startswith("selection.")
                        and name != "selection.lb_divert"
                        and isinstance(count, int))
        assert by_reason == selected
        caches = sum(1 for e in events
                     if e.kind is EventKind.CACHE_ACCESS)
        assert sum(count for name, count in snapshot.items()
                   if name.startswith("cache.")
                   and isinstance(count, int)) == caches

    def test_run_boundaries_emitted(self, traced):
        _, telemetry = traced
        kinds = [e.kind.value for e in telemetry.events()]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
