"""Metrics registry: counters, gauges, fixed-bucket histograms."""

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_counters,
)


class TestCounter:
    def test_monotonic(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_any_direction(self):
        gauge = Gauge("depth")
        gauge.set(7.5)
        gauge.set(2.0)
        assert gauge.value == 2.0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("lat", bounds=(1, 4, 16))
        for value in (0, 1, 2, 4, 5, 100):
            hist.observe(value)
        # <=1: {0,1}; <=4: {2,4}; <=16: {5}; overflow: {100}
        assert hist.counts == [2, 2, 1, 1]
        assert hist.total == 6
        assert hist.sum == 112.0

    def test_valid_increasing_bounds_accepted(self):
        Histogram("bits", bounds=(18, 54, 72, 144, 288))

    def test_rejects_non_increasing_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=(1, 1, 2))
        with pytest.raises(ValueError):
            Histogram("x", bounds=(4, 2))

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=())

    def test_rejects_negative_observation(self):
        hist = Histogram("x", bounds=(1,))
        with pytest.raises(ValueError):
            hist.observe(-0.5)

    def test_to_json(self):
        hist = Histogram("x", bounds=(2,))
        hist.observe(1)
        assert hist.to_json() == {
            "bounds": [2], "counts": [1, 0], "total": 1, "sum": 1.0,
        }


class TestMetricsRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", (1, 2)) is \
            registry.histogram("h", (1, 2))

    def test_cross_type_name_collision(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError):
            registry.gauge("name")
        with pytest.raises(ValueError):
            registry.histogram("name", (1,))

    def test_histogram_bounds_mismatch(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", (1, 3))

    def test_snapshot_deterministic_and_typed(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z.count").inc(3)
            registry.counter("a.count").inc(1)
            registry.gauge("a.gauge").set(1.5)
            registry.histogram("m.hist", (10,)).observe(4)
            return registry.snapshot()

        snapshot = build()
        # Same construction in any key-request order -> same snapshot.
        assert list(snapshot) == list(build())
        assert snapshot["z.count"] == 3
        assert snapshot["a.gauge"] == 1.5
        assert snapshot["m.hist"]["total"] == 1

    def test_render_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        registry.gauge("load").set(0.5)
        text = registry.render()
        assert "runs" in text and "load" in text


class TestMergeCounters:
    def test_sums_integer_counters_only(self):
        merged = merge_counters([
            {"a": 1, "b": 2, "g": 1.5},
            {"a": 3, "c": 4, "flag": True},
        ])
        assert merged == {"a": 4, "b": 2, "c": 4}
