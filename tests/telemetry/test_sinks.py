"""Sinks: ring buffer bounds/drop accounting, JSONL streaming."""

import pytest

from repro.telemetry import (
    EventKind,
    JsonlSink,
    NullSink,
    RingBufferSink,
    make_event,
    read_jsonl_events,
)


def _events(n, kind=EventKind.WIRE_SELECTED):
    return [make_event(i, kind, {"i": i}) for i in range(n)]


class TestRingBufferSink:
    def test_keeps_most_recent_when_bounded(self):
        sink = RingBufferSink(capacity=3)
        for event in _events(5):
            sink.emit(event)
        kept = sink.events()
        assert [e.cycle for e in kept] == [2, 3, 4]
        assert sink.dropped == 2
        assert sink.emitted == 5

    def test_unbounded(self):
        sink = RingBufferSink(capacity=None)
        for event in _events(100):
            sink.emit(event)
        assert len(sink.events()) == 100
        assert sink.dropped == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_clear(self):
        sink = RingBufferSink()
        sink.emit(make_event(1, EventKind.RUN_START))
        sink.clear()
        assert sink.events() == ()
        assert sink.emitted == 0


class TestJsonlSink:
    def test_round_trip_via_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            for event in _events(4, EventKind.TRANSFER_ROUTED):
                sink.emit(event)
        rows = read_jsonl_events(path)
        assert len(rows) == 4
        assert rows[0]["kind"] == "transfer_routed"
        assert [r["cycle"] for r in rows] == [0, 1, 2, 3]

    def test_caller_owned_handle_left_open(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with path.open("w") as handle:
            sink = JsonlSink(handle)
            sink.emit(make_event(9, EventKind.PLANE_KILL))
            sink.close()  # must not close the caller's handle
            assert not handle.closed

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        sink.emit(make_event(1, EventKind.RUN_START))
        sink.close()
        with pytest.raises(ValueError):
            sink.emit(make_event(2, EventKind.RUN_END))


class TestNullSink:
    def test_swallows_everything(self):
        sink = NullSink()
        sink.emit(make_event(1, EventKind.RUN_START))
        sink.close()  # idempotent no-op
