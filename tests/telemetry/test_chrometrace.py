"""Chrome-trace export: structure, validation, round trips."""

import pytest

from repro.telemetry import (
    EventKind,
    assert_valid_chrome_trace,
    chrome_events,
    chrome_trace,
    instant_timestamps,
    load_chrome_trace,
    make_event,
    trace_categories,
    validate_chrome_trace,
    write_chrome_trace,
)


def _run_events():
    return [
        make_event(10, EventKind.RUN_START, {"benchmark": "gzip"}),
        make_event(11, EventKind.WIRE_SELECTED,
                   {"reason": "bulk", "plane": "B"}),
        make_event(12, EventKind.LB_DIVERT, {"from": "B", "to": "PW"}),
        make_event(15, EventKind.CACHE_ACCESS, {"level": "l1"}),
        make_event(20, EventKind.RUN_END, {"committed": 5, "cycles": 10}),
    ]


class TestChromeEvents:
    def test_instants_plus_synthetic_span(self):
        events = chrome_events(_run_events())
        phases = [e["ph"] for e in events]
        assert phases.count("i") == 5
        assert phases.count("X") == 1
        span = next(e for e in events if e["ph"] == "X")
        assert span["name"] == "simulation"
        assert span["ts"] == 10
        assert span["dur"] == 10

    def test_sorted_by_timestamp(self):
        events = chrome_events(reversed(_run_events()))
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)

    def test_no_span_without_run_boundaries(self):
        events = chrome_events(_run_events()[1:-1])
        assert all(e["ph"] == "i" for e in events)

    def test_cycle_is_microsecond_ts(self):
        (event,) = chrome_events(
            [make_event(1234, EventKind.PLANE_KILL, {"plane": "L"})]
        )
        assert event["ts"] == 1234
        assert event["cat"] == "fault"
        assert event["args"] == {"plane": "L"}


class TestEnvelope:
    def test_chrome_trace_records_time_unit(self):
        trace = chrome_trace(_run_events(), metadata={"model": "X"})
        assert trace["otherData"]["time_unit"] == "cycles"
        assert trace["otherData"]["model"] == "X"
        assert validate_chrome_trace(trace) == []

    def test_write_and_load_round_trip(self, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", _run_events())
        trace = load_chrome_trace(path)
        assert validate_chrome_trace(trace) == []
        assert trace_categories(trace) == sorted(
            {"run", "wire-selection", "overflow", "cache"}
        )
        stamps = instant_timestamps(trace)
        assert stamps == sorted(stamps)


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"foo": 1}) != []

    def test_flags_every_broken_field(self):
        bad = {"traceEvents": [
            {"name": "", "cat": "x", "ph": "i", "ts": 1,
             "pid": 0, "tid": 0},
            {"name": "ok", "cat": "x", "ph": "zz", "ts": -1,
             "pid": 0, "tid": 0},
            {"name": "span", "cat": "x", "ph": "X", "ts": 1,
             "pid": 0, "tid": 0},  # missing dur
        ]}
        errors = validate_chrome_trace(bad)
        assert len(errors) == 4

    def test_assert_raises_with_detail(self):
        with pytest.raises(ValueError, match="invalid Chrome trace"):
            assert_valid_chrome_trace({"traceEvents": [{}]})

    def test_accepts_bool_rejection_for_numbers(self):
        bad = {"traceEvents": [
            {"name": "x", "cat": "x", "ph": "i", "ts": True,
             "pid": 0, "tid": 0},
        ]}
        assert any("'ts'" in e for e in validate_chrome_trace(bad))
