"""The Telemetry handle: null default, zero-cost disabled contract."""

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    EventKind,
    RingBufferSink,
    Telemetry,
)


class TestNullTelemetry:
    def test_shared_singleton(self):
        assert Telemetry.null() is NULL_TELEMETRY
        assert NULL_TELEMETRY.enabled is False

    def test_disabled_handle_records_nothing(self):
        NULL_TELEMETRY.emit(5, EventKind.PLANE_KILL, {"plane": "L"})
        NULL_TELEMETRY.count("x")
        NULL_TELEMETRY.observe("h", 1, bounds=(10,))
        NULL_TELEMETRY.set_gauge("g", 2.0)
        assert NULL_TELEMETRY.events() == ()
        assert NULL_TELEMETRY.metrics.snapshot() == {}

    def test_components_default_to_null_handle(self):
        from repro.core.config import (
            InterconnectConfig,
            ProcessorConfig,
            wire_counts,
        )
        from repro.core.processor import ClusteredProcessor
        from repro.workloads.generator import TraceGenerator
        from repro.workloads.spec2k import profile

        generator = TraceGenerator(profile("gzip"), seed=1)
        cpu = ClusteredProcessor(
            ProcessorConfig(num_clusters=4),
            InterconnectConfig(wires=wire_counts(B=144)),
            generator.stream_forever(),
        )
        assert cpu.telemetry is NULL_TELEMETRY
        assert cpu.network.telemetry is NULL_TELEMETRY
        assert cpu.network.selector.telemetry is NULL_TELEMETRY
        assert cpu.steering.telemetry is NULL_TELEMETRY


class TestEnabledTelemetry:
    def test_emit_and_count(self):
        tel = Telemetry(sink=RingBufferSink())
        tel.emit(3, EventKind.WIRE_SELECTED, {"reason": "bulk"})
        tel.count("selection.bulk")
        tel.count("selection.bulk", 2)
        (event,) = tel.events()
        assert event.cycle == 3
        assert event.attr("reason") == "bulk"
        assert tel.metrics.snapshot()["selection.bulk"] == 3

    def test_observe_and_gauge(self):
        tel = Telemetry()
        tel.observe("bits", 72, bounds=(18, 144))
        tel.set_gauge("depth", 4.0)
        snapshot = tel.metrics.snapshot()
        assert snapshot["bits"]["total"] == 1
        assert snapshot["depth"] == 4.0

    def test_events_empty_for_unbuffered_sink(self, tmp_path):
        from repro.telemetry import JsonlSink

        tel = Telemetry(sink=JsonlSink(tmp_path / "e.jsonl"))
        tel.emit(1, EventKind.RUN_START)
        assert tel.events() == ()
        tel.close()

    def test_disabled_flag_suppresses_everything(self):
        sink = RingBufferSink()
        tel = Telemetry(sink=sink, enabled=False)
        tel.emit(1, EventKind.RUN_START)
        tel.count("x")
        assert sink.events() == ()
        assert tel.metrics.snapshot() == {}
