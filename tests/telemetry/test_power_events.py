"""Power telemetry: gate/wake events through the whole trace pipeline.

``plane_gated``/``plane_woken`` are discovered lazily (the manager
settles a plane's past when something asks about it), so beyond the
usual export round-trip these tests pin the monotonicity contract: the
export stamp is the discovery cycle, the effective cycle rides in the
attributes, and the resulting trace always validates.
"""

from repro.core.models import model
from repro.core.simulation import simulate_benchmark
from repro.telemetry import (
    EventKind,
    RingBufferSink,
    Telemetry,
    chrome_trace,
    load_chrome_trace,
    make_event,
    trace_categories,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.events import EVENT_CATEGORY

GATING = "idle:drowsy=16,gate=64"


def gated_trace_events():
    telemetry = Telemetry(enabled=True,
                          sink=RingBufferSink(capacity=None))
    simulate_benchmark(model("X").config, "gzip", instructions=800,
                      warmup=200, gating=GATING, telemetry=telemetry)
    return list(telemetry.events()), telemetry


class TestPowerEventKinds:
    def test_power_kinds_have_a_category(self):
        assert EVENT_CATEGORY[EventKind.PLANE_GATED] == "power"
        assert EVENT_CATEGORY[EventKind.PLANE_WOKEN] == "power"

    def test_metrics_counters_increment(self):
        events, telemetry = gated_trace_events()
        snapshot = dict(telemetry.metrics.snapshot())
        gated = [e for e in events if e.kind is EventKind.PLANE_GATED]
        woken = [e for e in events if e.kind is EventKind.PLANE_WOKEN]
        assert gated and woken
        assert snapshot["power.plane_gated"] == len(gated)
        assert snapshot["power.plane_woken"] == len(woken)


class TestChromeRoundTrip:
    def test_gated_run_exports_valid_trace(self, tmp_path):
        events, _ = gated_trace_events()
        path = write_chrome_trace(tmp_path / "gated.json", events,
                                  metadata={"gating": GATING})
        trace = load_chrome_trace(path)
        assert validate_chrome_trace(trace) == []
        assert "power" in trace_categories(trace)
        assert trace["otherData"]["gating"] == GATING

    def test_power_attrs_survive_the_round_trip(self, tmp_path):
        events, _ = gated_trace_events()
        path = write_chrome_trace(tmp_path / "gated.json", events)
        trace = load_chrome_trace(path)
        exported = [e for e in trace["traceEvents"]
                    if e.get("cat") == "power"]
        assert exported
        gate_downs = [e for e in exported if e["name"] == "plane_gated"]
        wakes = [e for e in exported if e["name"] == "plane_woken"]
        assert gate_downs and wakes
        for entry in gate_downs:
            args = entry["args"]
            assert args["state"] in ("drowsy", "gated")
            assert args["plane"] in ("B", "PW", "L", "W")
            # Lazy discovery: the effective cycle rides in the args and
            # never exceeds the (monotonic) discovery stamp.
            assert args["cycle"] <= entry["ts"]
        for entry in wakes:
            assert entry["args"]["from"] in ("drowsy", "gated")

    def test_discovery_stamps_are_monotonic(self):
        events, _ = gated_trace_events()
        power_stamps = [e.cycle for e in events
                        if e.kind in (EventKind.PLANE_GATED,
                                      EventKind.PLANE_WOKEN)]
        assert power_stamps == sorted(power_stamps)

    def test_synthetic_power_events_validate(self):
        trace = chrome_trace([
            make_event(40, EventKind.PLANE_GATED,
                       {"link": "c0", "plane": "L", "state": "drowsy",
                        "cycle": 32}),
            make_event(55, EventKind.PLANE_WOKEN,
                       {"link": "c0", "plane": "L", "from": "drowsy",
                        "ready": 57, "forced": False}),
        ])
        assert validate_chrome_trace(trace) == []


class TestObserverEffect:
    def test_traced_gated_run_equals_untraced(self):
        # Re-pin the observer-effect contract with gating active: the
        # power manager consults telemetry.enabled, never the reverse.
        untraced = simulate_benchmark(model("X").config, "gzip",
                                      instructions=800, warmup=200,
                                      gating=GATING)
        telemetry = Telemetry(enabled=True,
                              sink=RingBufferSink(capacity=None))
        traced = simulate_benchmark(model("X").config, "gzip",
                                    instructions=800, warmup=200,
                                    gating=GATING, telemetry=telemetry)
        assert traced == untraced
