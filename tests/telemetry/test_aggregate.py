"""Sweep-level aggregation: decision reasons, link traffic, rendering."""

from repro.telemetry import (
    EventKind,
    TraceSummary,
    make_event,
    render_summary,
    summarize,
)


def _stream():
    return [
        make_event(1, EventKind.WIRE_SELECTED, {"reason": "bulk"}),
        make_event(2, EventKind.WIRE_SELECTED, {"reason": "bulk"}),
        make_event(3, EventKind.WIRE_SELECTED, {"reason": "pw_store"}),
        make_event(3, EventKind.TRANSFER_ROUTED,
                   {"channel": "c0:out", "plane": "B", "bits": 72}),
        make_event(4, EventKind.TRANSFER_ROUTED,
                   {"channel": "c0:out", "plane": "B", "bits": 72}),
        make_event(4, EventKind.TRANSFER_ROUTED,
                   {"channel": "c1:out", "plane": "PW", "bits": 72}),
        make_event(5, EventKind.LB_DIVERT, {"from": "B", "to": "PW"}),
        make_event(6, EventKind.STEER_OVERFLOW,
                   {"preferred": 0, "fallback": 1}),
        make_event(7, EventKind.PLANE_KILL,
                   {"channel": "c0:out", "plane": "L"}),
        make_event(8, EventKind.CACHE_ACCESS, {"level": "l1"}),
        make_event(9, EventKind.CACHE_ACCESS, {"level": "l1"}),
        make_event(9, EventKind.CACHE_ACCESS, {"level": "l2"}),
    ]


class TestSummarize:
    def test_full_accounting(self):
        summary = summarize(_stream())
        assert isinstance(summary, TraceSummary)
        assert summary.total_events == 12
        assert summary.selection_reasons == (("bulk", 2), ("pw_store", 1))
        assert summary.link_traffic == (
            ("c0:out", "B", 2, 144),
            ("c1:out", "PW", 1, 72),
        )
        assert summary.lb_diverts == 1
        assert summary.steer_overflows == 1
        assert summary.fault_counts == (("plane_kill", 1),)
        assert summary.cache_levels == (("l1", 2), ("l2", 1))

    def test_empty_stream(self):
        summary = summarize([])
        assert summary.total_events == 0
        assert summary.selection_reasons == ()
        assert summary.link_traffic == ()


class TestRenderSummary:
    def test_renders_all_tables(self):
        text = render_summary(summarize(_stream()), cycles=100)
        assert "12 events over 100 measured cycles" in text
        assert "wire-selection decisions by reason:" in text
        assert "bulk" in text and "66.7%" in text
        assert "traffic by link and plane:" in text
        assert "c0:out" in text
        assert "1 load-balance divert(s), 1 steering spill(s)" in text
        assert "cache accesses by level: l1=2, l2=1" in text
        assert "fault events: plane_kill=1" in text

    def test_render_empty_is_stable(self):
        text = render_summary(summarize([]))
        assert "0 events" in text
