"""Tests for the synthetic instruction-stream generator."""

import pytest

from repro.workloads.generator import TraceGenerator, WorkloadProfile
from repro.workloads.trace import NO_REG, NUM_ARCH_REGS, OpClass


def make_gen(seed=42, **kw):
    return TraceGenerator(WorkloadProfile(name="test", **kw), seed=seed)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = list(make_gen(seed=7).stream(500))
        b = list(make_gen(seed=7).stream(500))
        assert a == b

    def test_different_seed_different_stream(self):
        a = list(make_gen(seed=7).stream(500))
        b = list(make_gen(seed=8).stream(500))
        assert a != b

    def test_stream_is_resumable(self):
        gen = make_gen(seed=7)
        first = list(gen.stream(100))
        second = list(gen.stream(100))
        reference = list(make_gen(seed=7).stream(200))
        assert first + second == reference


class TestInstructionMix:
    def test_load_store_fractions(self):
        """Dynamic mix tracks the requested static mix.  Loop weighting
        (hot blocks execute more) adds benchmark-level variance, so the
        check averages several seeds."""
        loads = stores = total = 0
        for seed in (1, 2, 3, 4):
            gen = make_gen(seed=seed, load_frac=0.26, store_frac=0.12)
            m = gen.measure(15000)
            loads += m["loads"]
            stores += m["stores"]
            total += m["instructions"]
        assert loads / total == pytest.approx(0.26, abs=0.05)
        assert stores / total == pytest.approx(0.12, abs=0.04)

    def test_paper_memory_traffic_claim(self):
        """'More than one third of all instructions are loads or stores'
        -- the default mix honours the paper's premise."""
        gen = make_gen()
        m = gen.measure(20000)
        assert (m["loads"] + m["stores"]) / m["instructions"] > 1 / 3 - 0.04

    def test_fp_fraction(self):
        gen = make_gen(fp_frac=0.5, fpmul_frac=0.2)
        m = gen.measure(20000)
        assert m["fp"] / m["instructions"] > 0.2

    def test_int_profile_has_no_fp(self):
        gen = make_gen(fp_frac=0.0, fpmul_frac=0.0)
        m = gen.measure(5000)
        assert m["fp"] == 0

    def test_branch_fraction_tracks_block_size(self):
        small = make_gen(block_size_range=(4, 6)).measure(10000)
        large = make_gen(block_size_range=(12, 16)).measure(10000)
        assert (small["branches"] / small["instructions"]
                > large["branches"] / large["instructions"])


class TestRecords:
    def test_memory_ops_have_addresses(self):
        for rec in make_gen().stream(2000):
            if rec.op.is_memory:
                assert rec.addr > 0
                assert rec.addr % 8 == 0  # word aligned
            elif rec.op is not OpClass.BRANCH:
                assert rec.addr == 0

    def test_branches_have_targets(self):
        seen = 0
        for rec in make_gen().stream(5000):
            if rec.op is OpClass.BRANCH:
                seen += 1
                assert rec.target > 0
                assert rec.dest == NO_REG
        assert seen > 100

    def test_registers_in_range(self):
        for rec in make_gen(fp_frac=0.4).stream(5000):
            if rec.dest != NO_REG:
                assert 0 <= rec.dest < 2 * NUM_ARCH_REGS
            for src in rec.srcs:
                assert 0 <= src < 2 * NUM_ARCH_REGS

    def test_fp_ops_use_fp_registers(self):
        for rec in make_gen(fp_frac=0.5).stream(5000):
            if rec.op.is_fp and rec.dest != NO_REG:
                assert rec.dest >= NUM_ARCH_REGS

    def test_value_widths_sane(self):
        for rec in make_gen().stream(2000):
            if rec.dest != NO_REG:
                assert 1 <= rec.value_width <= 64
            if rec.op.is_fp and rec.dest != NO_REG:
                assert rec.value_width == 64


class TestNarrowness:
    def test_narrow_fraction_controllable(self):
        lo = make_gen(narrow_static_frac=0.0, narrow_background=0.0)
        hi = make_gen(narrow_static_frac=0.6)
        m_lo, m_hi = lo.measure(15000), hi.measure(15000)
        assert m_lo["narrow_results"] == 0
        assert m_hi["narrow_results"] / max(1, m_hi["int_results"]) > 0.3

    def test_narrow_is_pc_consistent(self):
        """Per-PC consistency is what makes the paper's predictor work."""
        gen = make_gen(narrow_static_frac=0.3)
        by_pc = {}
        for rec in gen.stream(20000):
            if rec.writes_int_register:
                by_pc.setdefault(rec.pc, []).append(rec.is_narrow)
        consistent = 0
        eligible = 0
        for outcomes in by_pc.values():
            if len(outcomes) >= 10:
                eligible += 1
                rate = sum(outcomes) / len(outcomes)
                if rate < 0.1 or rate > 0.9:
                    consistent += 1
        assert eligible > 10
        assert consistent / eligible > 0.9


class TestMemoryBehaviour:
    def test_stream_addresses_stride(self):
        gen = make_gen(stream_frac=1.0, pointer_frac=0.0, stack_frac=0.0)
        last = {}
        strided = total = 0
        for rec in gen.stream(10000):
            if rec.op.is_memory:
                if rec.pc in last:
                    total += 1
                    strided += (rec.addr - last[rec.pc]) == 8
                last[rec.pc] = rec.addr
        assert strided / total > 0.95

    def test_working_set_bounds_addresses(self):
        gen = make_gen(working_set_kb=64, stream_frac=0.5,
                       pointer_frac=0.5, stack_frac=0.0)
        base = TraceGenerator.DATA_BASE
        for rec in gen.stream(5000):
            if rec.op.is_memory and rec.addr < TraceGenerator.STACK_BASE:
                assert base <= rec.addr < base + 64 * 1024

    def test_footprint_covers_regions(self):
        gen = make_gen(working_set_kb=128)
        regions = gen.data_footprint()
        assert (TraceGenerator.DATA_BASE, 128 * 1024) in regions
        assert any(b == TraceGenerator.STACK_BASE for b, _ in regions)


class TestValidation:
    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", load_frac=1.5)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", load_frac=0.6, store_frac=0.5)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", num_blocks=1)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", block_size_range=(5, 3))
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", working_set_kb=0)
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", mean_loop_trips=0.5)

    def test_stream_rejects_negative(self):
        with pytest.raises(ValueError):
            list(make_gen().stream(-1))
