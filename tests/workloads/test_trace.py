"""Tests for instruction records and op classification."""

import pytest

from repro.workloads.trace import (
    EXECUTION_LATENCY,
    NO_REG,
    NUM_ARCH_REGS,
    InstructionRecord,
    OpClass,
)


class TestOpClass:
    def test_memory_classification(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.IALU.is_memory
        assert not OpClass.BRANCH.is_memory

    def test_fp_classification(self):
        assert OpClass.FPALU.is_fp
        assert OpClass.FPMUL.is_fp
        assert not OpClass.IMUL.is_fp

    def test_every_op_has_latency(self):
        for op in OpClass:
            assert EXECUTION_LATENCY[op] >= 1

    def test_latency_ordering(self):
        """Single-cycle ALU, multi-cycle multiply/FP (Simplescalar)."""
        assert EXECUTION_LATENCY[OpClass.IALU] == 1
        assert EXECUTION_LATENCY[OpClass.IMUL] > 1
        assert (EXECUTION_LATENCY[OpClass.FPMUL]
                > EXECUTION_LATENCY[OpClass.FPALU])


class TestInstructionRecord:
    def test_narrowness(self):
        narrow = InstructionRecord(pc=0, op=OpClass.IALU, dest=3,
                                   value_width=10)
        wide = InstructionRecord(pc=0, op=OpClass.IALU, dest=3,
                                 value_width=11)
        no_dest = InstructionRecord(pc=0, op=OpClass.STORE, dest=NO_REG,
                                    value_width=4)
        assert narrow.is_narrow
        assert not wide.is_narrow
        assert not no_dest.is_narrow

    def test_writes_int_register(self):
        int_write = InstructionRecord(pc=0, op=OpClass.IALU, dest=5)
        fp_write = InstructionRecord(pc=0, op=OpClass.FPALU,
                                     dest=NUM_ARCH_REGS + 3)
        none = InstructionRecord(pc=0, op=OpClass.BRANCH, dest=NO_REG)
        assert int_write.writes_int_register
        assert not fp_write.writes_int_register
        assert not none.writes_int_register

    def test_records_are_frozen(self):
        rec = InstructionRecord(pc=0, op=OpClass.IALU, dest=5)
        with pytest.raises(AttributeError):
            rec.dest = 7

    def test_records_are_hashable_and_comparable(self):
        a = InstructionRecord(pc=4, op=OpClass.IALU, dest=5, srcs=(1,))
        b = InstructionRecord(pc=4, op=OpClass.IALU, dest=5, srcs=(1,))
        assert a == b
        assert hash(a) == hash(b)
