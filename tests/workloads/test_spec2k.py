"""Tests for the 23 SPEC2k-like benchmark profiles."""

import pytest

from repro.workloads import TraceGenerator
from repro.workloads.spec2k import BENCHMARK_NAMES, PROFILES, all_profiles, profile


class TestSuiteShape:
    def test_exactly_23_benchmarks(self):
        """The paper uses 23 of the 26 SPEC2k programs."""
        assert len(BENCHMARK_NAMES) == 23
        assert len(PROFILES) == 23

    def test_excluded_benchmarks_absent(self):
        """Sixtrack, facerec and perlbmk were incompatible with the
        paper's infrastructure."""
        for missing in ("sixtrack", "facerec", "perlbmk"):
            assert missing not in BENCHMARK_NAMES

    def test_figure3_order(self):
        assert BENCHMARK_NAMES[0] == "ammp"
        assert BENCHMARK_NAMES[-1] == "wupwise"
        assert list(BENCHMARK_NAMES) == sorted(BENCHMARK_NAMES)

    def test_all_profiles_order_matches(self):
        assert tuple(p.name for p in all_profiles()) == BENCHMARK_NAMES

    def test_lookup(self):
        assert profile("mcf").name == "mcf"
        with pytest.raises(ValueError):
            profile("doom3")


class TestDiversity:
    """The paper's conclusions rest on workload diversity; the profiles
    must actually differ along the axes that matter."""

    def test_fp_and_int_benchmarks_present(self):
        fp = [n for n in BENCHMARK_NAMES if PROFILES[n].fp_frac > 0.2]
        integer = [n for n in BENCHMARK_NAMES if PROFILES[n].fp_frac == 0.0]
        assert len(fp) >= 10
        assert len(integer) >= 8

    def test_mcf_is_the_memory_monster(self):
        mcf = profile("mcf")
        assert mcf.working_set_kb == max(
            p.working_set_kb for p in PROFILES.values()
        )
        assert mcf.pointer_frac >= 0.5

    def test_streaming_fp_benchmarks(self):
        for name in ("swim", "mgrid", "lucas", "applu"):
            assert PROFILES[name].stream_frac >= 0.6
            assert PROFILES[name].working_set_kb >= 4096

    def test_branchy_int_benchmarks(self):
        for name in ("gcc", "crafty"):
            assert PROFILES[name].hard_branch_frac >= 0.05

    def test_int_benchmarks_have_more_narrow_operands(self):
        int_narrow = [PROFILES[n].narrow_static_frac
                      for n in BENCHMARK_NAMES if PROFILES[n].fp_frac == 0]
        fp_narrow = [PROFILES[n].narrow_static_frac
                     for n in BENCHMARK_NAMES if PROFILES[n].fp_frac >= 0.5]
        assert min(int_narrow) > max(fp_narrow)

    def test_ilp_spread(self):
        locs = [p.dep_locality for p in PROFILES.values()]
        assert max(locs) - min(locs) > 0.3


class TestProfilesGenerate:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_profile_streams(self, name):
        gen = TraceGenerator(profile(name), seed=1)
        records = list(gen.stream(300))
        assert len(records) == 300
