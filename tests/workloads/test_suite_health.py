"""Suite-health checks: every benchmark profile behaves sanely end to end.

One short timing run per benchmark on the baseline machine; guards
against a profile regressing into a degenerate stream (deadlocked IPC,
absurd miss rates, empty branch mix) without anyone noticing.
"""

import pytest

from repro.core.models import model
from repro.core.simulation import build_processor
from repro.workloads.spec2k import BENCHMARK_NAMES, PROFILES


@pytest.fixture(scope="module")
def health():
    """Run every benchmark once and collect vitals."""
    vitals = {}
    for name in BENCHMARK_NAMES:
        cpu = build_processor(model("I").config, name)
        stats = cpu.run(1500, warmup=500)
        vitals[name] = {
            "ipc": stats.ipc,
            "l1_miss": cpu.hierarchy.l1.miss_rate,
            "l2_miss": cpu.hierarchy.l2.miss_rate,
            "bpred": cpu.fetch.predictor.accuracy,
            "branches": stats.branches,
            "loads": stats.loads,
        }
    return vitals


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestBenchmarkVitals:
    def test_ipc_in_plausible_range(self, health, name):
        assert 0.05 < health[name]["ipc"] < 6.0

    def test_memory_system_exercised(self, health, name):
        assert health[name]["loads"] > 100
        assert 0.0 <= health[name]["l1_miss"] < 0.8

    def test_branch_predictor_functional(self, health, name):
        assert health[name]["branches"] > 20
        assert health[name]["bpred"] > 0.6


class TestSuiteAggregates:
    def test_mcf_is_slowest_class(self, health):
        """The memory monster must sit in the suite's bottom quartile."""
        ipcs = sorted(v["ipc"] for v in health.values())
        assert health["mcf"]["ipc"] <= ipcs[len(ipcs) // 4]

    def test_suite_has_ipc_diversity(self, health):
        ipcs = [v["ipc"] for v in health.values()]
        assert max(ipcs) / min(ipcs) > 3.0

    def test_mcf_misses_the_l2_most(self, health):
        """Only mcf's working set exceeds the 8 MB L2, so its L2 miss
        rate must top the suite."""
        assert health["mcf"]["l2_miss"] == max(
            v["l2_miss"] for v in health.values()
        )

    def test_aggregate_am_in_band(self, health):
        am = sum(v["ipc"] for v in health.values()) / len(health)
        # Wide band: short windows are noisy; the bench harness holds
        # the tight comparisons.
        assert 0.6 < am < 2.5
