"""End-to-end degraded-mode runs: faults through the full simulator.

The acceptance bar of the fault-injection work: a permanent L-Wire
plane kill completes end-to-end with non-zero degradation counters and
an IPC no better than the fault-free run, and a fixed-seed faulted run
is bit-deterministic regardless of worker count.
"""

import pytest

from repro.core.models import model
from repro.core.simulation import simulate_benchmark
from repro.harness.runner import ExperimentPlan, ExperimentRunner, ResultCache

WINDOW = dict(instructions=500, warmup=120)


@pytest.fixture(scope="module")
def faultfree_run():
    return simulate_benchmark(model("X").config, "gzip", **WINDOW)


class TestLWireKill:
    def test_completes_with_degradation_and_no_speedup(self, faultfree_run):
        degraded = simulate_benchmark(
            model("X").config, "gzip", fault_spec="kill=L@*@200", **WINDOW,
        )
        extra = degraded.extra_stats()
        assert extra["planes_killed"] > 0
        assert extra["degraded_selections"] > 0
        assert degraded.ipc <= faultfree_run.ipc
        assert degraded.instructions >= WINDOW["instructions"]

    def test_faultfree_run_reports_zero_degradation(self, faultfree_run):
        extra = faultfree_run.extra_stats()
        for key in ("retransmissions", "corrupted_segments",
                    "retry_escalations", "degraded_reroutes",
                    "degraded_selections", "planes_killed"):
            assert extra[key] == 0.0

    def test_null_fault_spec_equals_no_fault_spec(self, faultfree_run):
        explicit = simulate_benchmark(model("X").config, "gzip",
                                      fault_spec="", **WINDOW)
        assert explicit == faultfree_run


class TestTransientErrors:
    def test_ber_produces_retransmissions(self):
        run = simulate_benchmark(
            model("X").config, "gzip", fault_spec="ber=1e-4", **WINDOW,
        )
        extra = run.extra_stats()
        assert extra["corrupted_segments"] > 0
        assert extra["retransmissions"] > 0
        assert extra["planes_killed"] == 0

    def test_same_seed_is_bit_deterministic(self):
        a = simulate_benchmark(model("X").config, "gzip",
                               fault_spec="ber=1e-5", **WINDOW)
        b = simulate_benchmark(model("X").config, "gzip",
                               fault_spec="ber=1e-5", **WINDOW)
        assert a == b

    def test_seed_changes_fault_pattern(self):
        a = simulate_benchmark(model("X").config, "gzip", seed=1,
                               fault_spec="ber=1e-4", **WINDOW)
        b = simulate_benchmark(model("X").config, "gzip", seed=2,
                               fault_spec="ber=1e-4", **WINDOW)
        assert a != b


class TestWorkerCountDeterminism:
    def test_serial_equals_parallel_under_faults(self, tmp_path):
        plans = [
            ExperimentPlan("X", "gzip", fault_spec="kill=L@*@200",
                           **WINDOW),
            ExperimentPlan("X", "gzip", fault_spec="ber=1e-5", **WINDOW),
            ExperimentPlan("X", "mesa", fault_spec="kill=B@*@100",
                           **WINDOW),
            ExperimentPlan("X", "art", **WINDOW),
        ]
        serial_runner = ExperimentRunner(
            cache=ResultCache(tmp_path / "serial"), verbose=False)
        serial = serial_runner.run_many(plans, workers=1)
        parallel_runner = ExperimentRunner(
            cache=ResultCache(tmp_path / "parallel"), verbose=False)
        parallel = parallel_runner.run_many(plans, workers=4)
        assert parallel_runner.last_summary.executed == len(plans)
        for plan in plans:
            assert serial[plan] == parallel[plan], plan.describe()

    def test_fault_spec_separates_cache_entries(self, tmp_path):
        runner = ExperimentRunner(cache=ResultCache(tmp_path),
                                  verbose=False)
        healthy = ExperimentPlan("X", "gzip", **WINDOW)
        faulted = ExperimentPlan("X", "gzip", fault_spec="kill=L@*@200",
                                 **WINDOW)
        assert healthy.cache_key() != faulted.cache_key()
        runs = runner.run_many([healthy, faulted])
        assert runner.executed == 2
        assert runs[healthy] != runs[faulted]
        assert "faults=kill=L@*@200" in faulted.describe()


class TestFaultSweep:
    def test_faultsweep_table_renders(self, tmp_path):
        from repro.harness.faultsweep import (
            FaultScenario,
            render_faultsweep,
            run_faultsweep,
        )

        runner = ExperimentRunner(cache=ResultCache(tmp_path),
                                  verbose=False)
        scenarios = (
            FaultScenario("fault-free", ""),
            FaultScenario("L kill", "kill=L@*@150"),
        )
        result = run_faultsweep(
            runner, model_name="X", scenarios=scenarios,
            benchmarks=("gzip",), instructions=500, warmup=120,
        )
        assert result.report.ok
        text = render_faultsweep(result)
        assert "L kill" in text and "fault-free" in text
        assert "killed" in text
        # The kill scenario must report dead planes in the table.
        kill_line = next(line for line in text.splitlines()
                         if "L kill" in line)
        assert kill_line.rstrip().split("|")[-1].strip() != "0"
