"""Property-based tests of system-level invariants (hypothesis)."""

import itertools

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import InterconnectConfig, ProcessorConfig, wire_counts
from repro.core.processor import ClusteredProcessor
from repro.interconnect.message import Transfer, TransferKind
from repro.interconnect.network import Network
from repro.interconnect.plane import LinkComposition
from repro.interconnect.topology import CrossbarTopology, HierarchicalTopology
from repro.wires import WireClass
from repro.workloads.trace import InstructionRecord, OpClass

# -- strategies -------------------------------------------------------------

ops = st.sampled_from([OpClass.IALU, OpClass.IMUL, OpClass.FPALU,
                       OpClass.LOAD, OpClass.STORE])


@st.composite
def instruction_records(draw):
    op = draw(ops)
    is_fp = op.is_fp
    base = 32 if is_fp else 0
    dest = -1 if op is OpClass.STORE else base + draw(
        st.integers(min_value=0, max_value=31)
    )
    n_srcs = draw(st.integers(min_value=1, max_value=2))
    srcs = tuple(
        base + draw(st.integers(min_value=0, max_value=31))
        for _ in range(n_srcs)
    )
    addr = 0
    if op.is_memory:
        addr = 0x1000_0000 + 8 * draw(
            st.integers(min_value=0, max_value=4095)
        )
    width = draw(st.integers(min_value=1, max_value=64))
    return InstructionRecord(pc=0x400000 + 4 * draw(
        st.integers(min_value=0, max_value=255)
    ), op=op, dest=dest, srcs=srcs, addr=addr, value_width=width)


record_lists = st.lists(instruction_records(), min_size=4, max_size=24)

proc_settings = settings(max_examples=12, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])


def build_cpu(records, wires=None):
    config = ProcessorConfig(num_clusters=4)
    icfg = InterconnectConfig(wires=wires or wire_counts(B=144))
    return ClusteredProcessor(config, icfg, itertools.cycle(records))


# -- processor invariants -----------------------------------------------------

@proc_settings
@given(records=record_lists)
def test_always_commits_requested_instructions(records):
    """No record mix may deadlock the pipeline."""
    cpu = build_cpu(records)
    stats = cpu.run(150)
    assert stats.committed >= 150


@proc_settings
@given(records=record_lists)
def test_processor_deterministic(records):
    a = build_cpu(records).run(120)
    b = build_cpu(records).run(120)
    assert a.cycles == b.cycles
    assert a.committed == b.committed


@proc_settings
@given(records=record_lists)
def test_heterogeneous_never_deadlocks(records):
    cpu = build_cpu(records, wires=wire_counts(B=144, PW=288, L=36))
    stats = cpu.run(150)
    assert stats.committed >= 150


@proc_settings
@given(records=record_lists)
def test_ipc_within_machine_limits(records):
    """Committed IPC can never exceed the commit width."""
    cpu = build_cpu(records)
    stats = cpu.run(150)
    assert stats.ipc <= cpu.config.commit_width


# -- network invariants --------------------------------------------------------

transfer_lists = st.lists(
    st.tuples(
        st.sampled_from(["c0", "c1", "c2", "c3", "cache"]),
        st.sampled_from(["c0", "c1", "c2", "c3", "cache"]),
        st.integers(min_value=0, max_value=10),  # submit cycle
    ),
    min_size=1, max_size=40,
)

net_settings = settings(max_examples=25, deadline=None)


def _run_network(transfers, topology, wires):
    net = Network(topology, LinkComposition(wires))
    arrivals = []
    submitted = 0
    pairs = [(s, d, c) for s, d, c in transfers if s != d]
    pairs.sort(key=lambda p: p[2])
    for cycle in range(600):
        net.deliver_due(cycle)
        while pairs and pairs[0][2] <= cycle:
            src, dst, _ = pairs.pop(0)
            net.submit(
                Transfer(kind=TransferKind.OPERAND, src=src, dst=dst,
                         on_arrival=lambda c, t=cycle: arrivals.append(
                             (t, c))),
                cycle,
            )
            submitted += 1
        net.tick(cycle)
        if not pairs and net.idle():
            break
    return submitted, arrivals, net


@net_settings
@given(transfers=transfer_lists)
def test_conservation_and_latency_crossbar(transfers):
    """Every submitted transfer arrives exactly once, never earlier than
    the wire latency allows."""
    submitted, arrivals, net = _run_network(
        transfers, CrossbarTopology(4), {WireClass.B: 144}
    )
    assert len(arrivals) == submitted
    for submit_cycle, arrive_cycle in arrivals:
        assert arrive_cycle >= submit_cycle + 2  # B-Wire crossbar


@net_settings
@given(transfers=transfer_lists)
def test_conservation_hierarchical(transfers):
    mapped = [(f"c{hash(s) % 16}", f"c{hash(d) % 16}", c)
              for s, d, c in transfers]
    submitted, arrivals, _ = _run_network(
        mapped, HierarchicalTopology(16),
        {WireClass.B: 144, WireClass.L: 36},
    )
    assert len(arrivals) == submitted


@net_settings
@given(transfers=transfer_lists)
def test_energy_matches_traffic(transfers):
    submitted, _, net = _run_network(
        transfers, CrossbarTopology(4), {WireClass.B: 144}
    )
    expected = submitted * 72 * 0.58
    assert abs(net.stats.dynamic_energy() - expected) < 1e-6
