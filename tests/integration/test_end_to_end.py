"""End-to-end integration: the paper's qualitative claims at small scale.

These use short windows (seconds, not minutes); the full-scale numbers
live in benchmarks/.  Tolerances here are deliberately loose -- each test
asserts a *direction* the paper's conclusions rest on, not a magnitude.
"""

import pytest

from repro.core.models import model
from repro.core.simulation import simulate_benchmark, simulate_model
from repro.interconnect.message import TransferKind
from repro.wires import WireClass

BENCHES = ("gzip", "mesa", "swim", "crafty")
INSN = 4000
WARMUP = 1500


def am_ipc(mname, **kw):
    result = simulate_model(model(mname), benchmarks=BENCHES,
                            instructions=INSN, warmup=WARMUP, **kw)
    return result


@pytest.fixture(scope="module")
def base():
    return am_ipc("I")


class TestLatencySensitivity:
    def test_doubling_latency_degrades_performance(self, base):
        """Section 1: '...performance degrades by 12% when the
        inter-cluster latency is doubled.'"""
        slow = am_ipc("I", latency_scale=2.0)
        loss = 1 - slow.am_ipc / base.am_ipc
        # Full-suite magnitude (~12%, matching the paper) is checked by
        # the benchmark harness; this short-window subset only asserts a
        # clear directional loss.
        assert 0.02 < loss < 0.30


class TestHeterogeneousWires:
    def test_lwire_layer_improves_ipc(self, base):
        """Figure 3: adding an L-Wire layer helps performance."""
        vii = am_ipc("VII")
        assert vii.am_ipc > base.am_ipc

    def test_pw_only_loses_ipc_but_saves_energy(self, base):
        """Table 3, Model II: roughly half the dynamic energy, and no
        real performance win (the full-suite slowdown is checked by the
        benchmark harness; on a 4-benchmark subset PW's doubled
        bandwidth can locally mask its latency)."""
        ii = am_ipc("II")
        assert ii.am_ipc < base.am_ipc * 1.03
        assert ii.total_dynamic < 0.7 * base.total_dynamic

    def test_wider_bwires_help(self, base):
        """Model IV doubles B-Wire bandwidth: never slower."""
        iv = am_ipc("IV")
        assert iv.am_ipc >= base.am_ipc * 0.99

    def test_model_v_splits_traffic(self):
        """Model V: store data / ready operands ride PW-Wires, cutting
        B-plane traffic (the paper reports 36% of transfers on PW)."""
        v = simulate_benchmark(model("V").config, "gzip",
                               instructions=INSN, warmup=WARMUP)
        cpu_stats = v  # energy split is in the totals
        assert cpu_stats.interconnect_dynamic > 0


class TestWireUsage:
    def test_model_i_uses_only_bwires(self):
        from repro.core.simulation import build_processor
        cpu = build_processor(model("I").config, "gzip")
        cpu.run(2000, warmup=500)
        stats = cpu.network.stats
        assert stats.transfers_on(WireClass.B) > 0
        assert stats.transfers_on(WireClass.L) == 0
        assert stats.transfers_on(WireClass.PW) == 0

    def test_model_vii_splits_addresses(self):
        from repro.core.simulation import build_processor
        cpu = build_processor(model("VII").config, "gzip")
        cpu.run(2000, warmup=500)
        stats = cpu.network.stats
        assert stats.transfers_on(WireClass.L) > 0
        assert stats.split_transfers > 0

    def test_model_vi_bulk_on_pw(self):
        from repro.core.simulation import build_processor
        cpu = build_processor(model("VI").config, "gzip")
        cpu.run(2000, warmup=500)
        stats = cpu.network.stats
        assert stats.transfers_on(WireClass.PW) > 0
        assert stats.transfers_on(WireClass.B) == 0

    def test_mispredicts_travel_the_network(self):
        from repro.core.simulation import build_processor
        cpu = build_processor(model("I").config, "gzip")
        cpu.run(3000, warmup=500)
        assert cpu.network.stats.by_kind.get(TransferKind.MISPREDICT, 0) > 0


class TestScaling:
    def test_sixteen_clusters_do_not_collapse(self, base):
        """Section 5.3: 16 clusters improve IPC for high-ILP programs."""
        big = am_ipc("I", num_clusters=16)
        assert big.am_ipc > 0.85 * base.am_ipc

    def test_lwires_help_more_at_sixteen_clusters(self):
        """The wire-delay-constrained 16-cluster system benefits more
        from L-Wires than the 4-cluster system does (7.4% vs 4.2%)."""
        base16 = am_ipc("I", num_clusters=16)
        vii16 = am_ipc("VII", num_clusters=16)
        gain = vii16.am_ipc / base16.am_ipc - 1
        assert gain > 0.0


class TestStatisticsClaims:
    def test_false_dependence_rate_below_paper_bound(self):
        """Section 4: fewer than 9% of loads see a false LS-bit alias."""
        run = simulate_benchmark(model("VII").config, "gzip",
                                 instructions=INSN, warmup=WARMUP)
        extra = run.extra_stats()
        rate = extra["false_dependences"] / max(1, extra["loads_disambiguated"])
        assert rate < 0.09

    def test_narrow_predictor_quality(self):
        """Section 4: ~95% coverage, ~2% false-narrow.  Short windows
        leave proportionally more cold-start misses than the paper's
        100M-instruction runs, so the coverage bound here is loose."""
        run = simulate_benchmark(model("VII").config, "gzip",
                                 instructions=INSN, warmup=WARMUP)
        extra = run.extra_stats()
        assert extra["narrow_coverage"] > 0.75
        assert extra["narrow_false_rate"] < 0.08
