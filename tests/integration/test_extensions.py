"""Integration tests for the future-work extensions.

* transmission-line L-Wires (latency immune to wire-constraint scaling);
* frequent-value compaction on the L-Wire plane.
"""

from dataclasses import replace

from repro.core.config import InterconnectConfig, ProcessorConfig, wire_counts
from repro.core.models import model
from repro.core.simulation import build_processor
from repro.interconnect.selection import PolicyFlags
from repro.interconnect.topology import CrossbarTopology
from repro.wires import WireClass


class TestTransmissionLineLWires:
    def test_lwire_latency_immune_to_scaling(self):
        rc = CrossbarTopology(4, latency_scale=2.0)
        tl = CrossbarTopology(4, latency_scale=2.0,
                              transmission_line_lwires=True)
        assert rc.path("c0", "c1").latency[WireClass.L] == 2
        assert tl.path("c0", "c1").latency[WireClass.L] == 1
        # B-Wires scale in both.
        assert tl.path("c0", "c1").latency[WireClass.B] == 4

    def test_no_effect_without_scaling(self):
        tl = CrossbarTopology(4, transmission_line_lwires=True)
        assert tl.path("c0", "c1").latency[WireClass.L] == 1

    def test_config_threads_the_flag(self):
        cfg = ProcessorConfig(latency_scale=2.0,
                              transmission_line_lwires=True)
        topo = cfg.build_topology()
        assert topo.path("c0", "c1").latency[WireClass.L] == 1

    def test_tl_lwires_never_slower(self):
        """At doubled RC latencies, transmission-line L-Wires give at
        least the performance of RC L-Wires."""
        def run(tl):
            cpu = build_processor(
                model("VII").config, "gzip", latency_scale=2.0,
                config=ProcessorConfig(latency_scale=2.0,
                                       transmission_line_lwires=tl),
            )
            return cpu.run(3000, warmup=1000).ipc

        assert run(True) >= run(False) * 0.995


class TestFrequentValueCompaction:
    def _build(self, enabled):
        flags = PolicyFlags(lwire_frequent_value=enabled)
        icfg = InterconnectConfig(wires=wire_counts(B=144, L=36),
                                  flags=flags)
        return build_processor(icfg, "gzip")

    def test_disabled_by_default(self):
        cpu = build_processor(model("VII").config, "gzip")
        assert cpu.frequent_values is None

    def test_fv_transfers_happen_when_enabled(self):
        cpu = self._build(True)
        cpu.run(4000, warmup=1000)
        assert cpu.frequent_values is not None
        assert cpu.frequent_values.observations > 0
        assert cpu.network.selector.fv_transfers > 0

    def test_fv_raises_lwire_traffic(self):
        off = self._build(False)
        off.run(4000, warmup=1000)
        on = self._build(True)
        on.run(4000, warmup=1000)
        assert (on.network.stats.transfers_on(WireClass.L)
                > off.network.stats.transfers_on(WireClass.L))

    def test_fv_does_not_break_execution(self):
        cpu = self._build(True)
        stats = cpu.run(4000, warmup=1000)
        assert stats.committed >= 4000

    def test_flag_composition_with_other_policies(self):
        flags = replace(PolicyFlags().without_lwire_uses(),
                        lwire_frequent_value=True)
        icfg = InterconnectConfig(wires=wire_counts(B=144, L=36),
                                  flags=flags)
        cpu = build_processor(icfg, "gzip")
        cpu.run(3000, warmup=800)
        # Only FV transfers may use L-Wires in this configuration (some
        # selected transfers are still queued when the run stops, so
        # granted <= selected).
        l_transfers = cpu.network.stats.transfers_on(WireClass.L)
        assert 0 < l_transfers <= cpu.network.selector.fv_transfers
