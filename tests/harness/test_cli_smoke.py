"""Smoke tests for the ``python -m repro`` command-line interface."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main

SRC = str(Path(__file__).resolve().parents[2] / "src")
TINY = ["--instructions", "400", "--warmup", "100"]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestListingCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "Model" in out and "Link composition" in out
        assert "VII" in out

    def test_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "Benchmark" in out and "gzip" in out and "mesa" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "L-Wires" in out and "Rel delay" in out


class TestRunCommand:
    def test_run_with_workers(self, capsys):
        argv = ["run", "--model", "VII", "--benchmark", "gzip",
                "--workers", "2", *TINY]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "benchmark gzip" in out

    def test_run_hits_cache_on_second_invocation(self, capsys):
        argv = ["run", "--benchmark", "gzip", *TINY]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "1 executed" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "1 cache hits" in second

    def test_run_no_cache_skips_store(self, capsys, tmp_path):
        argv = ["run", "--benchmark", "gzip", "--no-cache", *TINY]
        assert main(argv) == 0
        capsys.readouterr()
        assert not (tmp_path / "cache").exists()
        # Nothing was stored, so the same invocation re-executes.
        assert main(argv) == 0
        assert "1 executed" in capsys.readouterr().out


class TestSweepCommands:
    def test_table3_subset_with_workers(self, capsys):
        argv = ["table3", "--benchmarks", "gzip", "--workers", "2", *TINY]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "ED2(10%)" in out
        assert "sweep:" in out

    def test_figure3_subset(self, capsys):
        argv = ["figure3", "--benchmarks", "gzip", "mesa", *TINY]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "L-Wire" in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro_models(self, tmp_path):
        env = dict(os.environ, REPRO_CACHE_DIR=str(tmp_path / "cache"))
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "models"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Interconnect models" in proc.stdout

    def test_python_dash_m_repro_run_workers(self, tmp_path):
        env = dict(os.environ, REPRO_CACHE_DIR=str(tmp_path / "cache"))
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", "--benchmark", "gzip",
             "--workers", "2", *TINY],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "IPC" in proc.stdout
