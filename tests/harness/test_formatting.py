"""Tests for the table/chart renderers and the paper-data fixtures."""

import pytest

from repro.core.models import MODEL_NAMES
from repro.harness.formatting import (
    percent_delta,
    render_bar_chart,
    render_table,
    shape_check,
)
from repro.harness.paperdata import PAPER_CLAIMS, PAPER_TABLE3, PAPER_TABLE4


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["A", "Bee"], [[1, 2.5], [33, 4.0]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Bee" in lines[1]
        assert "33" in text and "2.50" in text

    def test_none_rendered_as_dash(self):
        text = render_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = render_bar_chart(["a", "b"], [[1.0, 2.0]], ["s"])
        a_line, b_line = [l for l in text.splitlines() if "#" in l][:2]
        assert b_line.count("#") > a_line.count("#")

    def test_two_series_use_distinct_glyphs(self):
        text = render_bar_chart(["a"], [[1.0], [1.0]], ["x", "y"])
        assert "#" in text and "=" in text

    def test_validates_lengths(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a", "b"], [[1.0]], ["s"])


class TestHelpers:
    def test_percent_delta(self):
        assert percent_delta(1.05, 1.0) == "+5.0%"
        assert percent_delta(0.9, 1.0) == "-10.0%"
        assert percent_delta(1.0, 0.0) == "n/a"

    def test_shape_check(self):
        line = shape_check("x", -11.0, -12.0, 5.0)
        assert line.startswith("[OK ]")
        line = shape_check("x", -1.0, -12.0, 5.0)
        assert line.startswith("[DIFF]")


class TestPaperData:
    """Internal consistency of the transcribed paper numbers."""

    def test_tables_cover_all_models(self):
        assert set(PAPER_TABLE3) == set(MODEL_NAMES)
        assert set(PAPER_TABLE4) == set(MODEL_NAMES)

    def test_model_i_normalized_to_100(self):
        assert PAPER_TABLE3["I"].dynamic == 100
        assert PAPER_TABLE3["I"].ed2_10 == 100
        assert PAPER_TABLE4["I"].ed2_20 == 100

    def test_best_ed2_rows_match_abstract(self):
        """Abstract: up to 11% ED^2 reduction; best Table 4 rows 88.7."""
        best4 = min(r.ed2_20 for r in PAPER_TABLE4.values())
        assert best4 == pytest.approx(88.7)
        assert 100 - best4 >= PAPER_CLAIMS["best_ed2_gain_16cl"]

    def test_table3_best_matches_conclusions(self):
        """Conclusions: ~8% ED^2 reduction for 4 clusters (Model IX, 92)."""
        best3 = min(r.ed2_10 for r in PAPER_TABLE3.values()
                    if r.ed2_10 is not None)
        assert best3 == pytest.approx(92.0)

    def test_heterogeneous_win_in_paper_numbers(self):
        """In the paper's own tables, the best ED^2 at every share is a
        heterogeneous model -- the claim our Table 3 bench re-checks."""
        homogeneous = {"I", "II", "IV", "VIII"}
        best_10 = min(PAPER_TABLE3, key=lambda m: PAPER_TABLE3[m].ed2_10)
        best_20 = min(PAPER_TABLE3, key=lambda m: PAPER_TABLE3[m].ed2_20)
        best_t4 = min(PAPER_TABLE4, key=lambda m: PAPER_TABLE4[m].ed2_20)
        assert best_10 not in homogeneous
        assert best_20 not in homogeneous
        assert best_t4 not in homogeneous

    def test_paper_energy_arithmetic_is_self_consistent(self):
        """Our normalization (metrics.py) regenerates the paper's energy
        column from its own IPC/dyn/lkg columns within rounding."""
        from repro.core.metrics import RelativeMetrics
        for name in MODEL_NAMES:
            row = PAPER_TABLE3[name]
            metrics = RelativeMetrics(
                model=name, description="", relative_metal_area=1.0,
                am_ipc=row.ipc,
                relative_dynamic=row.dynamic / 100.0,
                relative_leakage=row.leakage / 100.0,
                relative_cycles=PAPER_TABLE3["I"].ipc / row.ipc,
            )
            assert metrics.processor_energy(0.10) == pytest.approx(
                row.energy_10, abs=0.8
            )
            assert metrics.ed2(0.10) == pytest.approx(row.ed2_10, abs=1.0)
