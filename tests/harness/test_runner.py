"""Tests for the experiment runner and its result cache."""

import pytest

from repro.core.metrics import BenchmarkRun
from repro.harness.runner import ExperimentPlan, ExperimentRunner, ResultCache


def make_run(bench="gzip"):
    return BenchmarkRun(
        benchmark=bench, instructions=1000, cycles=1200,
        interconnect_dynamic=123.0, interconnect_leakage=456.0,
        extra=(("redirects", 3.0),),
    )


class TestPlanKeys:
    def test_identical_plans_same_key(self):
        a = ExperimentPlan("I", "gzip")
        b = ExperimentPlan("I", "gzip")
        assert a.cache_key() == b.cache_key()

    def test_any_field_changes_key(self):
        base = ExperimentPlan("I", "gzip")
        variants = [
            ExperimentPlan("II", "gzip"),
            ExperimentPlan("I", "mesa"),
            ExperimentPlan("I", "gzip", num_clusters=16),
            ExperimentPlan("I", "gzip", latency_scale=2.0),
            ExperimentPlan("I", "gzip", instructions=999),
            ExperimentPlan("I", "gzip", warmup=7),
            ExperimentPlan("I", "gzip", seed=1),
            ExperimentPlan("I", "gzip", policy_tag="ablate"),
        ]
        keys = {v.cache_key() for v in variants}
        assert base.cache_key() not in keys
        assert len(keys) == len(variants)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        assert cache.load(plan) is None
        run = make_run()
        cache.store(plan, run)
        loaded = cache.load(plan)
        assert loaded == run

    def test_corrupt_file_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        cache.store(plan, make_run())
        cache._path(plan).write_text("{not json")
        assert cache.load(plan) is None

    def test_disabled_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        cache.store(plan, make_run())
        assert cache.load(plan) is None
        assert not list(tmp_path.iterdir())


class TestRunner:
    def test_cache_hit_avoids_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip", instructions=800, warmup=200)
        cache.store(plan, make_run())
        runner = ExperimentRunner(cache=cache, verbose=False)
        run = runner.run(plan)
        assert runner.cache_hits == 1
        assert runner.executed == 0
        assert run.cycles == 1200

    def test_executes_and_caches_on_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ExperimentRunner(cache=cache, verbose=False)
        plan = ExperimentPlan("I", "gzip", instructions=600, warmup=150)
        first = runner.run(plan)
        assert runner.executed == 1
        second = runner.run(plan)
        assert runner.cache_hits == 1
        assert second == first

    def test_run_model_aggregates(self, tmp_path):
        runner = ExperimentRunner(cache=ResultCache(tmp_path),
                                  verbose=False)
        result = runner.run_model("I", benchmarks=("gzip", "mesa"),
                                  instructions=500, warmup=100)
        assert result.model == "I"
        assert {r.benchmark for r in result.runs} == {"gzip", "mesa"}

    def test_run_model_with_flags_distinct_cache(self, tmp_path):
        from repro.interconnect.selection import PolicyFlags
        runner = ExperimentRunner(cache=ResultCache(tmp_path),
                                  verbose=False)
        ablated = PolicyFlags(lwire_narrow=False)
        a = runner.run_model_with_flags(
            "VII", PolicyFlags(), "default", benchmarks=("gzip",),
            instructions=500, warmup=100,
        )
        b = runner.run_model_with_flags(
            "VII", ablated, "no_narrow", benchmarks=("gzip",),
            instructions=500, warmup=100,
        )
        assert runner.executed == 2  # distinct tags, no false sharing
        assert a.model == "VII:default"
        assert b.model == "VII:no_narrow"
