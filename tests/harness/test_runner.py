"""Tests for the experiment runner and its result cache."""

import json
import threading

import pytest

from repro.core.metrics import BenchmarkRun
from repro.harness.runner import (
    CACHE_VERSION,
    ExperimentPlan,
    ExperimentRunner,
    ResultCache,
)


def make_run(bench="gzip"):
    return BenchmarkRun(
        benchmark=bench, instructions=1000, cycles=1200,
        interconnect_dynamic=123.0, interconnect_leakage=456.0,
        extra=(("redirects", 3.0),),
    )


class TestPlanKeys:
    def test_identical_plans_same_key(self):
        a = ExperimentPlan("I", "gzip")
        b = ExperimentPlan("I", "gzip")
        assert a.cache_key() == b.cache_key()

    def test_any_field_changes_key(self):
        base = ExperimentPlan("I", "gzip")
        variants = [
            ExperimentPlan("II", "gzip"),
            ExperimentPlan("I", "mesa"),
            ExperimentPlan("I", "gzip", num_clusters=16),
            ExperimentPlan("I", "gzip", latency_scale=2.0),
            ExperimentPlan("I", "gzip", instructions=999),
            ExperimentPlan("I", "gzip", warmup=7),
            ExperimentPlan("I", "gzip", seed=1),
            ExperimentPlan("I", "gzip", policy_tag="ablate"),
        ]
        keys = {v.cache_key() for v in variants}
        assert base.cache_key() not in keys
        assert len(keys) == len(variants)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        assert cache.load(plan) is None
        run = make_run()
        cache.store(plan, run)
        loaded = cache.load(plan)
        assert loaded == run

    def test_roundtrip_multiple_extra_pairs(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("VII", "mesa")
        run = BenchmarkRun(
            benchmark="mesa", instructions=5000, cycles=4000,
            interconnect_dynamic=9.5, interconnect_leakage=12.25,
            extra=(("redirects", 3.0), ("loads", 1200.0),
                   ("narrow_coverage", 0.953)),
        )
        cache.store(plan, run)
        assert cache.load(plan) == run

    def test_entries_are_sharded_two_levels(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        cache.store(plan, make_run())
        path = cache._path(plan)
        key = plan.cache_key()
        assert path == tmp_path / key[:2] / key[2:4] / f"{key}.json"
        assert path.exists()

    def test_legacy_flat_entry_migrates_on_load(self, tmp_path):
        # Caches written before sharding kept every entry at the top
        # level; the read path must still find them -- and move them
        # into their shard so the directory converges.
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        run = make_run()
        cache.store(plan, run)
        sharded = cache._path(plan)
        flat = tmp_path / sharded.name
        sharded.rename(flat)
        sharded.parent.rmdir()
        sharded.parent.parent.rmdir()

        assert cache.load(plan) == run
        assert sharded.exists()
        assert not flat.exists()
        # Second load comes straight from the shard.
        assert cache.load(plan) == run

    def test_corrupt_legacy_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        cache.store(plan, make_run())
        sharded = cache._path(plan)
        flat = tmp_path / sharded.name
        sharded.rename(flat)
        flat.write_text("{not json")

        assert cache.load(plan) is None
        assert not flat.exists()
        assert (tmp_path / "quarantine" / sharded.name).exists()

    def test_corrupt_file_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        cache.store(plan, make_run())
        cache._path(plan).write_text("{not json")
        assert cache.load(plan) is None

    def test_truncated_file_ignored_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        cache.store(plan, make_run())
        full = cache._path(plan).read_text()
        cache._path(plan).write_text(full[: len(full) // 2])
        assert cache.load(plan) is None
        assert not cache._path(plan).exists()
        assert (tmp_path / "quarantine" / cache._path(plan).name).exists()
        # A quarantined entry is a plain miss from then on.
        assert cache.load(plan) is None

    def test_missing_field_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        cache.store(plan, make_run())
        data = json.loads(cache._path(plan).read_text())
        del data["cycles"]
        cache._path(plan).write_text(json.dumps(data))
        assert cache.load(plan) is None

    def test_mistyped_field_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        cache.store(plan, make_run())
        data = json.loads(cache._path(plan).read_text())
        data["cycles"] = "1200"
        cache._path(plan).write_text(json.dumps(data))
        assert cache.load(plan) is None

    def test_wrong_cache_version_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        cache.store(plan, make_run())
        data = json.loads(cache._path(plan).read_text())
        data["provenance"]["cache_version"] = CACHE_VERSION - 1
        cache._path(plan).write_text(json.dumps(data))
        assert cache.load(plan) is None

    def test_legacy_entry_without_provenance_still_loads(self, tmp_path):
        # The 738 seed entries predate the provenance block; the cache
        # key already pins CACHE_VERSION, so they must stay valid.
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        run = make_run()
        cache._path(plan).parent.mkdir(parents=True, exist_ok=True)
        cache._path(plan).write_text(json.dumps({
            "benchmark": run.benchmark,
            "instructions": run.instructions,
            "cycles": run.cycles,
            "interconnect_dynamic": run.interconnect_dynamic,
            "interconnect_leakage": run.interconnect_leakage,
            "extra": [list(pair) for pair in run.extra],
        }))
        assert cache.load(plan) == run

    def test_corrupt_entry_is_reexecuted(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip", instructions=400, warmup=100)
        cache._path(plan).parent.mkdir(parents=True, exist_ok=True)
        cache._path(plan).write_text("garbage garbage")
        runner = ExperimentRunner(cache=cache, verbose=False)
        run = runner.run(plan)
        assert runner.executed == 1
        assert run.instructions >= 400
        # The re-execution replaced the bad entry with a good one.
        assert cache.load(plan) == run

    def test_disabled_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")
        cache.store(plan, make_run())
        assert cache.load(plan) is None
        assert not list(tmp_path.iterdir())

    def test_env_no_cache_overrides_enabled_flag(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = ResultCache(tmp_path, enabled=True)
        assert not cache.enabled

    def test_enabled_false_disables_without_env(self, tmp_path,
                                                monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = ResultCache(tmp_path, enabled=False)
        plan = ExperimentPlan("I", "gzip")
        cache.store(plan, make_run())
        assert cache.load(plan) is None
        assert not list(tmp_path.iterdir())

    def test_store_is_atomic_no_temp_files_left(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(20):
            cache.store(ExperimentPlan("I", "gzip", seed=i), make_run())
        names = [p.name for p in tmp_path.rglob("*") if p.is_file()]
        assert len(names) == 20
        assert all(n.endswith(".json") for n in names)

    def test_concurrent_stores_never_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip")

        def hammer(value):
            run = BenchmarkRun(
                benchmark="gzip", instructions=1000, cycles=1000 + value,
                interconnect_dynamic=float(value),
                interconnect_leakage=1.0,
            )
            for _ in range(25):
                cache.store(plan, run)

        threads = [threading.Thread(target=hammer, args=(v,))
                   for v in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exactly one file, and it parses as one of the writers' values.
        files = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert [f.name for f in files] == [cache._path(plan).name]
        loaded = cache.load(plan)
        assert loaded is not None
        assert loaded.cycles in {1000, 1001, 1002, 1003}

    def test_provenance_written(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("VII", "mesa", num_clusters=16,
                              policy_tag="ablate")
        cache.store(plan, make_run("mesa"), duration=1.25)
        data = json.loads(cache._path(plan).read_text())
        prov = data["provenance"]
        assert prov["cache_version"] == CACHE_VERSION
        assert prov["duration_seconds"] == 1.25
        assert prov["plan"]["model_name"] == "VII"
        assert prov["plan"]["num_clusters"] == 16
        assert prov["plan"]["policy_tag"] == "ablate"
        assert isinstance(prov["simulator_commit"], str)


class TestRunner:
    def test_cache_hit_avoids_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = ExperimentPlan("I", "gzip", instructions=800, warmup=200)
        cache.store(plan, make_run())
        runner = ExperimentRunner(cache=cache, verbose=False)
        run = runner.run(plan)
        assert runner.cache_hits == 1
        assert runner.executed == 0
        assert run.cycles == 1200

    def test_executes_and_caches_on_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ExperimentRunner(cache=cache, verbose=False)
        plan = ExperimentPlan("I", "gzip", instructions=600, warmup=150)
        first = runner.run(plan)
        assert runner.executed == 1
        second = runner.run(plan)
        assert runner.cache_hits == 1
        assert second == first

    def test_run_model_aggregates(self, tmp_path):
        runner = ExperimentRunner(cache=ResultCache(tmp_path),
                                  verbose=False)
        result = runner.run_model("I", benchmarks=("gzip", "mesa"),
                                  instructions=500, warmup=100)
        assert result.model == "I"
        assert {r.benchmark for r in result.runs} == {"gzip", "mesa"}

    def test_run_many_dedupes_and_summarizes(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ExperimentRunner(cache=cache, verbose=False)
        a = ExperimentPlan("I", "gzip", instructions=400, warmup=100)
        b = ExperimentPlan("I", "mesa", instructions=400, warmup=100)
        cache.store(b, make_run("mesa"))
        results = runner.run_many([a, b, a, a])
        assert set(results) == {a, b}
        assert runner.executed == 1
        assert runner.cache_hits == 1
        summary = runner.last_summary
        assert summary.requested == 4
        assert summary.unique == 2
        assert summary.executed == 1
        assert summary.cache_hits == 1
        assert summary.total_duration >= summary.max_duration > 0
        assert "1 executed" in summary.render()
        assert "2 duplicate plans coalesced" in summary.render()

    def test_run_many_warm_cache_executes_nothing(self, tmp_path):
        runner = ExperimentRunner(cache=ResultCache(tmp_path),
                                  verbose=False)
        plans = [ExperimentPlan("I", b, instructions=400, warmup=100)
                 for b in ("gzip", "mesa")]
        cold = runner.run_many(plans)
        assert runner.last_summary.executed == 2
        warm = runner.run_many(plans)
        assert runner.last_summary.executed == 0
        assert runner.last_summary.cache_hits == 2
        assert warm == cold

    def test_run_model_with_flags_distinct_cache(self, tmp_path):
        from repro.interconnect.selection import PolicyFlags
        runner = ExperimentRunner(cache=ResultCache(tmp_path),
                                  verbose=False)
        ablated = PolicyFlags(lwire_narrow=False)
        a = runner.run_model_with_flags(
            "VII", PolicyFlags(), "default", benchmarks=("gzip",),
            instructions=500, warmup=100,
        )
        b = runner.run_model_with_flags(
            "VII", ablated, "no_narrow", benchmarks=("gzip",),
            instructions=500, warmup=100,
        )
        assert runner.executed == 2  # distinct tags, no false sharing
        assert a.model == "VII:default"
        assert b.model == "VII:no_narrow"
