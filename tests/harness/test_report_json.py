"""SweepReport JSON round-trip and crash-resume from a manifest."""

import json

import pytest

from repro.core.metrics import BenchmarkRun
from repro.harness.runner import (
    REPORT_SCHEMA_VERSION,
    ExperimentPlan,
    ExperimentRunner,
    ResultCache,
    RunFailure,
    SweepReport,
    SweepSummary,
)

WINDOW = dict(instructions=300, warmup=80)


def plan_for(benchmark, **overrides):
    kwargs = dict(WINDOW)
    kwargs.update(overrides)
    return ExperimentPlan("I", benchmark, **kwargs)


def run_for(plan):
    return BenchmarkRun(
        benchmark=plan.benchmark, instructions=plan.instructions,
        cycles=plan.instructions * 2, interconnect_dynamic=10.0,
        interconnect_leakage=3.0, extra=(("redirects", 2.0),),
    )


def make_report():
    done = plan_for("gzip")
    failed = plan_for("mesa")
    return SweepReport(
        results={done: run_for(done)},
        failures=(RunFailure(plan=failed, reason="crash",
                             detail="worker died (exit 3)",
                             attempts=2),),
        summary=SweepSummary(requested=2, unique=2, executed=1,
                             cache_hits=0, total_duration=0.5,
                             max_duration=0.5, failed=1),
    )


class TestRoundTrip:
    def test_report_round_trips_through_json_text(self):
        report = make_report()
        clone = SweepReport.from_json(
            json.loads(json.dumps(report.to_json())))
        assert clone.summary == report.summary
        assert clone.failures == report.failures
        assert set(clone.results) == set(report.results)
        (plan,) = clone.results
        assert clone.results[plan] == report.results[plan]
        assert clone.manifest() == report.manifest()

    def test_serialization_is_completion_order_independent(self):
        """Two sweeps that finished in different orders must produce
        byte-identical manifests (results sort by cache key)."""
        a, b = plan_for("gzip"), plan_for("mesa")
        summary = SweepSummary(requested=2, unique=2, executed=2,
                               cache_hits=0, total_duration=1.0,
                               max_duration=0.5)
        forward = SweepReport(results={a: run_for(a), b: run_for(b)},
                              failures=(), summary=summary)
        backward = SweepReport(results={b: run_for(b), a: run_for(a)},
                               failures=(), summary=summary)
        assert json.dumps(forward.to_json(), sort_keys=True) == \
            json.dumps(backward.to_json(), sort_keys=True)

    def test_plan_round_trips(self):
        plan = plan_for("gzip", seed=7, fault_spec="ber=1e-06")
        assert ExperimentPlan.from_dict(plan.to_dict()) == plan


class TestRejection:
    def test_version_mismatch_is_rejected(self):
        data = make_report().to_json()
        data["schema_version"] = REPORT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            SweepReport.from_json(data)

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("summary"),
        lambda d: d.update(results="nope"),
        lambda d: d["results"][0]["run"].pop("cycles"),
        lambda d: d["results"][0]["run"].update(cycles="many"),
        lambda d: d["failures"][0].pop("reason"),
        lambda d: d["failures"][0]["plan"].update(model_name=7),
        lambda d: d["summary"].update(executed="lots"),
    ])
    def test_malformed_payloads_are_rejected(self, mutate):
        data = make_report().to_json()
        mutate(data)
        with pytest.raises(ValueError):
            SweepReport.from_json(data)

    @pytest.mark.parametrize("bad", [None, [], "x", 3])
    def test_non_object_payloads_are_rejected(self, bad):
        with pytest.raises(ValueError):
            SweepReport.from_json(bad)


class TestResumeFromManifest:
    def test_crashed_sweep_reloads_and_resumes(self, tmp_path,
                                               monkeypatch):
        """The resumability contract end to end: serialize a failed
        sweep, reload it in a 'new process', rerun only the
        unfinished plans, and end with a clean merged report."""
        flaky = tmp_path / "flaky-crashed-once"

        def execute(plan, interconnect_model=None):
            if plan.benchmark == "mesa" and not flaky.exists():
                import os

                flaky.write_text("crashed")
                os._exit(3)
            return run_for(plan), 0.01

        monkeypatch.setattr("repro.harness.runner._execute_plan",
                            execute)
        plans = [plan_for("gzip"), plan_for("mesa")]
        runner = ExperimentRunner(cache=ResultCache(tmp_path / "c"),
                                  verbose=False, run_timeout=10.0)
        first = runner.run_many_report(plans, workers=2)
        assert not first.ok
        assert [p.benchmark for p in first.unfinished_plans] == ["mesa"]

        # Simulate the crash/restart: only the JSON text survives.
        text = json.dumps(first.to_json())
        reloaded = SweepReport.from_json(json.loads(text))
        assert reloaded.unfinished_plans == first.unfinished_plans

        second = ExperimentRunner(cache=ResultCache(tmp_path / "c"),
                                  verbose=False, run_timeout=10.0)
        resumed = second.run_many_report(list(reloaded.unfinished_plans),
                                         workers=2)
        assert resumed.ok
        assert resumed.summary.executed == 1  # only the missing plan
        merged = dict(reloaded.results)
        merged.update(resumed.results)
        assert sorted(p.benchmark for p in merged) == ["gzip", "mesa"]

    def test_clean_report_has_no_unfinished_plans(self):
        report = SweepReport(
            results={}, failures=(),
            summary=SweepSummary(requested=0, unique=0, executed=0,
                                 cache_hits=0, total_duration=0.0,
                                 max_duration=0.0),
        )
        assert report.unfinished_plans == ()
        assert report.manifest() == ""
        assert report.ok
