"""Smoke tests for the table/figure regeneration functions.

Tiny windows and two benchmarks: these check plumbing and rendering,
not magnitudes (the benchmark harness owns those).
"""

import pytest

from repro.harness import (
    ExperimentRunner,
    ResultCache,
    render_claims,
    render_figure3,
    render_table3,
    render_table4,
    run_claims,
    run_figure3,
    run_table3,
    run_table4,
)

BENCHES = ("gzip", "mesa")
KW = dict(benchmarks=BENCHES, instructions=700, warmup=200)


@pytest.fixture
def runner(tmp_path):
    return ExperimentRunner(cache=ResultCache(tmp_path), verbose=False)


class TestFigure3:
    def test_runs_and_renders(self, runner):
        result = run_figure3(runner, **KW)
        assert result.benchmarks == BENCHES
        assert all(ipc > 0 for ipc in result.baseline_ipc)
        text = render_figure3(result)
        assert "Figure 3" in text
        assert "gzip" in text and "mesa" in text
        assert "paper" in text

    def test_am_math(self, runner):
        result = run_figure3(runner, **KW)
        assert result.baseline_am == pytest.approx(
            sum(result.baseline_ipc) / 2
        )


class TestTable3:
    def test_runs_subset_of_models(self, runner):
        result = run_table3(runner, models=("I", "II", "VII"), **KW)
        assert [r.model for r in result.rows] == ["I", "II", "VII"]
        baseline = result.row("I")
        assert baseline.relative_dynamic == pytest.approx(1.0)
        assert baseline.relative_leakage == pytest.approx(1.0)
        assert baseline.ed2(0.10) == pytest.approx(100.0)

    def test_render_includes_paper_comparison(self, runner):
        result = run_table3(runner, models=("I", "II"), **KW)
        text = render_table3(result)
        assert "Paper's Table 3" in text
        assert "288 PW-Wires" in text

    def test_best_ed2_lookup(self, runner):
        result = run_table3(runner, models=("I", "VII"), **KW)
        assert result.best_ed2(0.20).model in ("I", "VII")

    def test_row_lookup_raises(self, runner):
        result = run_table3(runner, models=("I",), **KW)
        with pytest.raises(KeyError):
            result.row("X")


class TestTable4:
    def test_sixteen_cluster_runs(self, runner):
        result = run_table4(runner, models=("I", "VII"), **KW)
        assert result.num_clusters == 16
        text = render_table4(result)
        assert "16-cluster" in text
        assert "best ED2(20%)" in text


class TestClaims:
    def test_all_claims_present(self, runner):
        claims = run_claims(runner, **KW)
        names = {c.name for c in claims}
        assert names == {
            "latency_doubling_ipc_loss", "figure3_lwire_gain",
            "lwire_gain_2x_latency", "scaling_4_to_16",
            "lwire_gain_16cl", "narrow_register_traffic",
            "narrow_predictor_coverage", "narrow_predictor_false",
            "false_dependence_rate",
        }
        text = render_claims(claims)
        assert "paper" in text

    def test_claims_carry_paper_values(self, runner):
        claims = run_claims(runner, **KW)
        by_name = {c.name: c for c in claims}
        assert by_name["latency_doubling_ipc_loss"].paper == -12.0
        assert by_name["figure3_lwire_gain"].paper == 4.2
