"""Harness profiler: spans, Chrome-trace export, runner integration."""

from repro.harness import ExperimentPlan, ExperimentRunner, ResultCache
from repro.harness.profiling import (
    NULL_PROFILER,
    HarnessProfiler,
    make_profiler,
)
from repro.telemetry import validate_chrome_trace


class TestHarnessProfiler:
    def test_span_records_complete_event(self):
        prof = HarnessProfiler()
        with prof.span("work", plan="p1"):
            pass
        (event,) = prof.events
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["dur"] >= 0
        assert event["args"] == {"plan": "p1"}

    def test_instant(self):
        prof = HarnessProfiler()
        prof.instant("cache.hit", category="cache")
        (event,) = prof.events
        assert event["ph"] == "i"
        assert event["cat"] == "cache"

    def test_span_closes_on_exception(self):
        prof = HarnessProfiler()
        try:
            with prof.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [e["name"] for e in prof.events] == ["failing"]

    def test_trace_validates_and_sorts(self):
        prof = HarnessProfiler()
        with prof.span("outer"):
            prof.instant("marker")
        trace = prof.chrome_trace()
        assert validate_chrome_trace(trace) == []
        stamps = [e["ts"] for e in trace["traceEvents"]]
        assert stamps == sorted(stamps)
        assert trace["otherData"]["source"] == "repro harness profiler"

    def test_write(self, tmp_path):
        prof = HarnessProfiler()
        prof.instant("x")
        path = prof.write(tmp_path / "sub" / "trace.json")
        assert path.exists()

    def test_summary_orders_by_total_time(self):
        prof = HarnessProfiler()
        prof.complete("fast", 0.0, 10.0)
        prof.complete("slow", 0.0, 500.0)
        prof.complete("slow", 500.0, 500.0)
        summary = prof.summary()
        assert summary.index("slow x2") < summary.index("fast x1")

    def test_disabled_profiler_records_nothing(self):
        assert NULL_PROFILER.enabled is False
        with NULL_PROFILER.span("x"):
            NULL_PROFILER.instant("y")
        NULL_PROFILER.complete("z", 0.0, 1.0)
        assert NULL_PROFILER.events == []

    def test_make_profiler(self):
        assert make_profiler(False) is None
        assert make_profiler(True).enabled is True


class TestRunnerIntegration:
    def _plan(self):
        return ExperimentPlan(
            model_name="I", benchmark="gzip",
            instructions=300, warmup=100,
        )

    def test_run_records_cache_and_run_spans(self, tmp_path):
        prof = HarnessProfiler()
        runner = ExperimentRunner(
            cache=ResultCache(tmp_path), verbose=False, profiler=prof,
        )
        runner.run(self._plan())
        names = [e["name"] for e in prof.events]
        assert "cache.load" in names
        assert "cache.miss" in names
        assert "run.execute" in names
        assert "cache.store" in names
        # Second invocation hits the cache.
        runner.run(self._plan())
        assert "cache.hit" in [e["name"] for e in prof.events]

    def test_sweep_span_wraps_run_many(self, tmp_path):
        prof = HarnessProfiler()
        runner = ExperimentRunner(
            cache=ResultCache(tmp_path), verbose=False, profiler=prof,
        )
        runner.run_many([self._plan()])
        sweep = [e for e in prof.events if e["name"] == "sweep"]
        assert len(sweep) == 1
        assert sweep[0]["args"]["executed"] == 1
        assert validate_chrome_trace(prof.chrome_trace()) == []

    def test_worker_pool_spans(self, tmp_path):
        prof = HarnessProfiler()
        runner = ExperimentRunner(
            cache=ResultCache(tmp_path), verbose=False, workers=2,
            profiler=prof,
        )
        plans = [
            self._plan(),
            ExperimentPlan(model_name="II", benchmark="gzip",
                           instructions=300, warmup=100),
        ]
        runner.run_many(plans)
        workers = [e for e in prof.events
                   if str(e["name"]).startswith("worker:")]
        assert len(workers) == 2
        assert all(e["args"]["outcome"] == "ok" for e in workers)

    def test_profiler_default_is_null(self, tmp_path):
        runner = ExperimentRunner(cache=ResultCache(tmp_path),
                                  verbose=False)
        assert runner.profiler is NULL_PROFILER
        runner.run(self._plan())  # no profiler errors on the default path
