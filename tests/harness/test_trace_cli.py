"""CLI: ``repro trace``, ``--telemetry``/``--trace-out``, ``--version``."""

import json

import pytest

from repro._version import package_version
from repro.__main__ import main
from repro.telemetry import (
    read_jsonl_events,
    trace_categories,
    validate_chrome_trace,
)

WINDOW = ["--instructions", "1500", "--warmup", "400"]


class TestVersionFlags:
    def test_repro_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {package_version()}"

    def test_lint_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro lint {package_version()}"

    def test_version_matches_pyproject(self):
        version = package_version()
        assert version
        assert version != "0.0.0+unknown"


class TestTraceCommand:
    def test_trace_writes_valid_chrome_json(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        code = main(["trace", "X", "--benchmark", "gzip", *WINDOW,
                     "--fault-spec", "kill=L@*@200",
                     "--out", str(out_path)])
        assert code == 0
        trace = json.loads(out_path.read_text())
        assert validate_chrome_trace(trace) == []
        categories = trace_categories(trace)
        for required in ("wire-selection", "overflow", "fault", "cache"):
            assert required in categories, f"missing category {required}"
        # Instant timestamps (cycles) must be monotonically ordered.
        stamps = [e["ts"] for e in trace["traceEvents"]
                  if e.get("ph") == "i"]
        assert stamps == sorted(stamps)
        out = capsys.readouterr().out
        assert "wire-selection decisions by reason:" in out
        assert "traffic by link and plane:" in out

    def test_trace_events_out_jsonl(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        code = main(["trace", "I", "--benchmark", "gzip", *WINDOW,
                     "--events-out", str(events_path)])
        assert code == 0
        rows = read_jsonl_events(events_path)
        assert rows
        assert rows[0]["kind"] == "run_start"
        assert rows[-1]["kind"] == "run_end"

    def test_trace_metrics_flag(self, capsys):
        code = main(["trace", "I", "--benchmark", "gzip", *WINDOW,
                     "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "network.segments_routed" in out


class TestRunTelemetryFlags:
    def test_run_telemetry_prints_summary(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        code = main(["run", "--model", "I", "--benchmark", "gzip",
                     *WINDOW, "--telemetry"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "trace summary:" in out

    def test_run_trace_out_implies_telemetry(self, tmp_path, capsys,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        out_path = tmp_path / "run.json"
        code = main(["run", "--model", "I", "--benchmark", "gzip",
                     *WINDOW, "--trace-out", str(out_path)])
        assert code == 0
        assert validate_chrome_trace(json.loads(out_path.read_text())) == []

    def test_run_telemetry_matches_untraced_numbers(self, capsys,
                                                    monkeypatch):
        """--telemetry must not change the printed IPC line."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        main(["run", "--model", "I", "--benchmark", "gzip", *WINDOW])
        plain = capsys.readouterr().out
        main(["run", "--model", "I", "--benchmark", "gzip", *WINDOW,
              "--telemetry"])
        traced = capsys.readouterr().out
        ipc_plain = next(line for line in plain.splitlines()
                         if line.startswith("IPC"))
        ipc_traced = next(line for line in traced.splitlines()
                          if line.startswith("IPC"))
        assert ipc_plain == ipc_traced


class TestSweepTelemetry:
    def test_figure3_telemetry_writes_harness_trace(self, tmp_path,
                                                    capsys, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        out_path = tmp_path / "harness.json"
        code = main(["figure3", "--benchmarks", "gzip",
                     "--instructions", "800", "--warmup", "200",
                     "--telemetry", "--trace-out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "profiler:" in out
        trace = json.loads(out_path.read_text())
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert "sweep" in names
        assert "run.execute" in names
