"""Determinism of the parallel runner.

Parallel sweeps are only trustworthy if a plan's outcome is independent
of *how* it was executed: serial vs. process-pool, cold vs. warm cache.
These tests compare full :class:`BenchmarkRun` values (every field,
including the ``extra`` stat tuples) across execution strategies.
"""

import pytest

from repro.harness.runner import ExperimentPlan, ExperimentRunner, ResultCache

#: Small but non-trivial window: long enough to exercise redirects,
#: LSQ disambiguation and narrow-operand traffic.
WINDOW = dict(instructions=500, warmup=120)

PLANS = [
    ExperimentPlan("I", "gzip", **WINDOW),
    ExperimentPlan("VII", "gzip", **WINDOW),
    ExperimentPlan("VII", "mesa", **WINDOW),
    ExperimentPlan("I", "mesa", num_clusters=16, **WINDOW),
    ExperimentPlan("II", "art", latency_scale=2.0, **WINDOW),
]


def run_all(tmp_path, workers):
    runner = ExperimentRunner(cache=ResultCache(tmp_path), verbose=False)
    return runner, runner.run_many(PLANS, workers=workers)


class TestDeterminism:
    def test_serial_equals_parallel(self, tmp_path):
        _, serial = run_all(tmp_path / "serial", workers=1)
        runner, parallel = run_all(tmp_path / "parallel", workers=4)
        assert runner.last_summary.executed == len(PLANS)
        for plan in PLANS:
            # Frozen-dataclass equality covers every field, including
            # the full extra stats tuple -- bit-identical, not "close".
            assert serial[plan] == parallel[plan], plan.describe()

    def test_cold_equals_warm_cache(self, tmp_path):
        runner, cold = run_all(tmp_path, workers=4)
        assert runner.executed == len(PLANS)
        rerun, warm = run_all(tmp_path, workers=4)
        assert rerun.executed == 0
        assert rerun.cache_hits == len(PLANS)
        for plan in PLANS:
            assert cold[plan] == warm[plan], plan.describe()

    def test_single_plan_run_matches_run_many(self, tmp_path):
        plan = PLANS[0]
        solo = ExperimentRunner(cache=ResultCache(tmp_path / "solo"),
                                verbose=False).run(plan)
        _, batch = run_all(tmp_path / "batch", workers=4)
        assert solo == batch[plan]

    def test_repeated_execution_is_reproducible(self, tmp_path):
        # Same plan simulated twice with no cache at all: the simulator
        # itself must be deterministic, not just the cache layer.
        runner = ExperimentRunner(
            cache=ResultCache(tmp_path, enabled=False), verbose=False)
        plan = ExperimentPlan("VII", "gzip", **WINDOW)
        assert runner.run(plan) == runner.run(plan)
        assert runner.executed == 2


class TestTable3Sweep:
    def test_table3_parallel_sweep_matches_serial(self, tmp_path):
        # The acceptance bar for the parallel backend: a cold-cache
        # Table 3 sweep with workers=4 is byte-identical to serial.
        from repro.harness.table3 import run_table3

        kw = dict(benchmarks=("gzip", "art"), instructions=400, warmup=100)
        serial_runner = ExperimentRunner(
            cache=ResultCache(tmp_path / "serial"), verbose=False)
        serial = run_table3(runner=serial_runner, workers=1, **kw)
        parallel_runner = ExperimentRunner(
            cache=ResultCache(tmp_path / "parallel"), verbose=False)
        parallel = run_table3(runner=parallel_runner, workers=4, **kw)
        assert parallel_runner.last_summary.executed == 20  # 10 models x 2
        assert serial.rows == parallel.rows


class TestParallelCacheIntegrity:
    def test_parallel_sweep_leaves_only_valid_json(self, tmp_path):
        import json

        runner, _ = run_all(tmp_path, workers=4)
        files = sorted(p for p in tmp_path.rglob("*") if p.is_file())
        assert len(files) == len(PLANS)
        for path in files:
            assert path.suffix == ".json"
            # Entries are sharded two levels deep by key prefix.
            assert path.parent.parent.parent == tmp_path
            assert path.name.startswith(path.parent.parent.name
                                        + path.parent.name)
            json.loads(path.read_text())  # every file parses completely

    def test_flag_override_models_cross_process(self, tmp_path):
        # Policy-flag ablations ship a custom model to the workers.
        from repro.interconnect.selection import PolicyFlags

        runner = ExperimentRunner(cache=ResultCache(tmp_path),
                                  verbose=False)
        ablated = runner.run_model_with_flags(
            "VII", PolicyFlags(lwire_narrow=False), "no_narrow",
            benchmarks=("gzip", "mesa"), workers=2, **WINDOW,
        )
        stock = runner.run_model("VII", benchmarks=("gzip", "mesa"),
                                 workers=2, **WINDOW)
        assert runner.executed == 4
        # The override must actually reach the worker processes: with
        # narrow-operand steering off, VII behaves differently.
        assert ablated.runs != stock.runs
