"""Crash isolation of the sweep harness: timeouts, retries, manifests."""

import os
import time

import pytest

from repro.core.metrics import BenchmarkRun
from repro.harness.runner import (
    ExperimentPlan,
    ExperimentRunner,
    ResultCache,
    SweepError,
    SweepReport,
)

WINDOW = dict(instructions=300, warmup=80)


def fake_run(plan):
    return BenchmarkRun(
        benchmark=plan.benchmark, instructions=plan.instructions,
        cycles=plan.instructions * 2, interconnect_dynamic=1.0,
        interconnect_leakage=1.0,
    )


def make_runner(tmp_path, **kwargs):
    kwargs.setdefault("verbose", False)
    return ExperimentRunner(cache=ResultCache(tmp_path), **kwargs)


@pytest.fixture
def scripted_execute(monkeypatch, tmp_path):
    """Replace the simulator with a scriptable stand-in.

    Behaviour is keyed on the plan's benchmark name: ``hang`` sleeps
    forever, ``die`` kills the worker process outright, ``raise`` raises,
    ``flaky`` crashes on the first attempt only (a marker file on disk
    carries state across worker processes), anything else returns a tiny
    result instantly.
    """
    marker = tmp_path / "flaky-already-crashed"

    def execute(plan, interconnect_model=None):
        if plan.benchmark == "hang":
            time.sleep(60)
        if plan.benchmark == "die":
            os._exit(3)
        if plan.benchmark == "raise":
            raise ValueError("simulated simulator bug")
        if plan.benchmark == "flaky" and not marker.exists():
            marker.write_text("crashed once")
            os._exit(3)
        return fake_run(plan), 0.01

    monkeypatch.setattr("repro.harness.runner._execute_plan", execute)
    return execute


class TestTimeouts:
    def test_hung_worker_killed_others_survive(self, tmp_path,
                                               scripted_execute):
        runner = make_runner(tmp_path, run_timeout=0.5)
        plans = [
            ExperimentPlan("I", "gzip", **WINDOW),
            ExperimentPlan("I", "hang", **WINDOW),
            ExperimentPlan("I", "mesa", **WINDOW),
        ]
        report = runner.run_many_report(plans, workers=2)
        assert not report.ok
        assert sorted(r.benchmark for r in report.results.values()) == [
            "gzip", "mesa"]
        (failure,) = report.failures
        assert failure.reason == "timeout"
        assert failure.plan.benchmark == "hang"
        assert failure.attempts == 1
        assert "0.5" in failure.detail
        assert report.summary.failed == 1
        assert "FAILED" in report.summary.render()
        assert "timeout" in report.manifest()

    def test_run_many_raises_sweep_error_with_partial_results(
            self, tmp_path, scripted_execute):
        runner = make_runner(tmp_path, run_timeout=0.5)
        plans = [
            ExperimentPlan("I", "gzip", **WINDOW),
            ExperimentPlan("I", "hang", **WINDOW),
        ]
        with pytest.raises(SweepError) as excinfo:
            runner.run_many(plans, workers=2)
        report = excinfo.value.report
        assert isinstance(report, SweepReport)
        assert [r.benchmark for r in report.results.values()] == ["gzip"]
        assert "hang" in str(excinfo.value)


class TestCrashes:
    def test_dead_worker_detected(self, tmp_path, scripted_execute):
        runner = make_runner(tmp_path, run_timeout=10)
        plans = [
            ExperimentPlan("I", "die", **WINDOW),
            ExperimentPlan("I", "gzip", **WINDOW),
        ]
        report = runner.run_many_report(plans, workers=2)
        (failure,) = report.failures
        assert failure.reason == "crash"
        assert "exit code 3" in failure.detail
        assert [r.benchmark for r in report.results.values()] == ["gzip"]

    def test_crash_retried_until_success(self, tmp_path, scripted_execute):
        runner = make_runner(tmp_path, run_timeout=10, max_retries=2,
                             retry_backoff=0.01)
        plan = ExperimentPlan("I", "flaky", **WINDOW)
        report = runner.run_many_report([plan], workers=2)
        assert report.ok
        assert report.results[plan].benchmark == "flaky"

    def test_retries_exhausted_reports_attempts(self, tmp_path,
                                                scripted_execute):
        runner = make_runner(tmp_path, run_timeout=10, max_retries=2,
                             retry_backoff=0.01)
        plan = ExperimentPlan("I", "die", **WINDOW)
        report = runner.run_many_report([plan], workers=2)
        (failure,) = report.failures
        assert failure.reason == "crash"
        assert failure.attempts == 3  # initial + 2 retries
        assert "3 attempt" in failure.describe()


class TestErrors:
    def test_simulator_exception_not_retried(self, tmp_path,
                                             scripted_execute):
        runner = make_runner(tmp_path, run_timeout=10, max_retries=3,
                             retry_backoff=0.01)
        plan = ExperimentPlan("I", "raise", **WINDOW)
        report = runner.run_many_report([plan], workers=2)
        (failure,) = report.failures
        assert failure.reason == "error"
        assert failure.attempts == 1  # exceptions are deterministic
        assert "simulated simulator bug" in failure.detail

    def test_serial_path_reports_errors_too(self, tmp_path, monkeypatch):
        def execute(plan, interconnect_model=None):
            raise RuntimeError("boom")

        monkeypatch.setattr("repro.harness.runner._execute_plan", execute)
        runner = make_runner(tmp_path)
        plan = ExperimentPlan("I", "gzip", **WINDOW)
        report = runner.run_many_report([plan], workers=1)
        (failure,) = report.failures
        assert failure.reason == "error"
        assert "boom" in failure.detail


class TestBookkeeping:
    def test_failed_runs_never_cached(self, tmp_path, scripted_execute):
        runner = make_runner(tmp_path, run_timeout=0.5)
        plans = [
            ExperimentPlan("I", "hang", **WINDOW),
            ExperimentPlan("I", "gzip", **WINDOW),
        ]
        runner.run_many_report(plans, workers=2)
        cached = [p for p in plans if runner.cache.load(p) is not None]
        assert [p.benchmark for p in cached] == ["gzip"]

    def test_last_report_set(self, tmp_path, scripted_execute):
        runner = make_runner(tmp_path, run_timeout=10)
        plan = ExperimentPlan("I", "gzip", **WINDOW)
        result = runner.run_many([plan], workers=2)
        assert runner.last_report is not None
        assert runner.last_report.ok
        assert runner.last_report.results[plan] == result[plan]

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError, match="run_timeout"):
            make_runner(tmp_path, run_timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            make_runner(tmp_path, max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            make_runner(tmp_path, retry_backoff=-0.5)

    def test_timeout_forces_isolation_even_single_worker(
            self, tmp_path, scripted_execute):
        # workers=1 with a timeout must still kill a hung run.
        runner = make_runner(tmp_path, run_timeout=0.5)
        plan = ExperimentPlan("I", "hang", **WINDOW)
        start = time.monotonic()
        report = runner.run_many_report([plan], workers=1)
        assert time.monotonic() - start < 30
        assert not report.ok
        assert report.failures[0].reason == "timeout"

    def test_real_simulation_passes_through_isolated_pool(self, tmp_path):
        # No monkeypatching: the pipe really carries BenchmarkRun values.
        runner = make_runner(tmp_path, run_timeout=300)
        plan = ExperimentPlan("I", "gzip", **WINDOW)
        report = runner.run_many_report([plan])
        assert report.ok
        assert report.results[plan].instructions >= WINDOW["instructions"]
