"""Seeded decorrelated-jitter backoff: reproducible, bounded, spread."""

import pytest

from repro.harness.backoff import (
    DecorrelatedJitter,
    backoff_seed,
    jitter_delays,
)


class TestReproducibility:
    def test_same_seed_and_key_pin_the_schedule(self):
        """The regression pin: a replayed sweep must wait identically."""
        first = jitter_delays(5, base=0.25, cap=30.0, seed=42,
                              key="plan-a")
        second = jitter_delays(5, base=0.25, cap=30.0, seed=42,
                               key="plan-a")
        assert first == second
        # Pin the exact values so an accidental RNG/derivation change
        # cannot slip through as "still random-looking".
        assert first == pytest.approx([
            0.4780006202172007,
            1.0744216809102782,
            2.3632857196566572,
            0.5745492290721814,
            0.823729608124969,
        ])

    def test_seed_derivation_is_stable(self):
        assert backoff_seed(42, "plan-a") == backoff_seed(42, "plan-a")
        assert backoff_seed(42, "plan-a") != backoff_seed(43, "plan-a")
        assert backoff_seed(42, "plan-a") != backoff_seed(42, "plan-b")

    def test_reset_replays_the_walk_shape(self):
        schedule = DecorrelatedJitter(0.25, cap=30.0, seed=7, key="k")
        first = [schedule.next() for _ in range(3)]
        schedule.reset()
        second = [schedule.next() for _ in range(3)]
        # Same walk bounds (restarted at base) but the RNG stream
        # continues: delays stay in range without repeating verbatim.
        assert all(0.25 <= d <= 30.0 for d in first + second)


class TestBounds:
    def test_delays_stay_within_base_and_cap(self):
        delays = jitter_delays(200, base=0.5, cap=4.0, seed=1, key="x")
        assert all(0.5 <= d <= 4.0 for d in delays)
        assert max(delays) == 4.0  # the walk does reach the cap

    def test_zero_base_means_no_waiting(self):
        assert jitter_delays(5, base=0.0, seed=3) == [0.0] * 5

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DecorrelatedJitter(-0.1)
        with pytest.raises(ValueError):
            DecorrelatedJitter(2.0, cap=1.0)


class TestDecorrelation:
    def test_distinct_plans_drift_apart(self):
        """The whole point: two plans failing simultaneously must not
        retry in lockstep."""
        a = jitter_delays(6, base=0.25, cap=30.0, seed=42, key="plan-a")
        b = jitter_delays(6, base=0.25, cap=30.0, seed=42, key="plan-b")
        assert a != b

    def test_delays_are_not_a_fixed_progression(self):
        """Unlike base * 2**attempt, consecutive ratios vary."""
        delays = jitter_delays(6, base=0.25, cap=1000.0, seed=5,
                               key="k")
        ratios = {round(b / a, 6) for a, b in zip(delays, delays[1:])}
        assert len(ratios) > 1
