"""The explorer end-to-end: grid, sampling, determinism, caching."""

import pytest

from repro.explore import (
    EvaluationSettings,
    ExploreResult,
    SearchSpace,
    baseline_point,
    explore,
    runner_executor,
)
from repro.explore.report import CSV_FIELDS, frontier_table, to_csv
from repro.harness.runner import ExperimentRunner, ResultCache
from repro.wires import WireClass

SETTINGS = EvaluationSettings(
    benchmarks=("bzip2",), instructions=2000, warmup=200, seed=0,
)


def make_executor(tmp_path):
    runner = ExperimentRunner(cache=ResultCache(tmp_path))
    return runner_executor(runner)


class TestSearchSpace:
    def test_grid_enumerates_valid_mixes(self):
        space = SearchSpace(nodes=(45,), b_options=(144,),
                            pw_options=(0, 288), l_options=(0, 36))
        encodings = [p.encode() for p in space.points()]
        assert encodings == sorted(encodings)
        assert "dp@n45:B144:cw2|xbar4" in encodings
        assert "dp@n45:PW288+B144+L36:cw2|xbar4" in encodings
        assert space.size() == 4

    def test_mixes_without_bulk_plane_are_excluded(self):
        space = SearchSpace(nodes=(45,), b_options=(0, 144),
                            pw_options=(0,), l_options=(0, 36))
        for point in space.points():
            mix = point.wire_mapping()
            assert any(mix.get(wc, 0) for wc in
                       (WireClass.B, WireClass.PW, WireClass.W))
        # L-only (B=0, PW=0, L=36) was dropped.
        assert space.size() == 2

    def test_neighbors_are_one_step_away(self):
        space = SearchSpace(nodes=(45, 32, 22))
        point = baseline_point()
        neighbors = space.neighbors(point)
        assert point not in neighbors
        assert any(n.node == 32 for n in neighbors)
        assert all(n.node in space.nodes for n in neighbors)
        # The 45 nm anchor sits at the edge of the node axis.
        assert not any(n.node == 22 for n in neighbors)

    def test_rejects_empty_or_unknown(self):
        with pytest.raises(ValueError):
            SearchSpace(nodes=())
        with pytest.raises(ValueError):
            SearchSpace(nodes=(45,), topologies=("torus",))


class TestExplore:
    def test_exhaustive_when_budget_covers_space(self, tmp_path):
        space = SearchSpace(nodes=(45, 32), pw_options=(0,),
                            l_options=(0, 36))
        result = explore(space, SETTINGS, make_executor(tmp_path),
                         budget=100, seed=0)
        assert isinstance(result, ExploreResult)
        assert len(result.evaluated) == space.size() == 8
        assert not result.failures
        assert result.baseline is not None
        assert result.baseline.rel_delay == 1.0
        assert result.baseline.energy == pytest.approx(100.0)
        assert result.baseline.ed2 == pytest.approx(100.0)

    def test_sampling_respects_budget(self, tmp_path):
        space = SearchSpace(nodes=(45, 32, 22, 16))
        assert space.size() > 12
        result = explore(space, SETTINGS, make_executor(tmp_path),
                         budget=12, seed=1)
        assert len(result.evaluated) <= 12
        # The 45 nm anchor is always evaluated for normalization.
        assert any(m.point == baseline_point()
                   for m in result.evaluated)

    def test_same_seed_same_frontier(self, tmp_path):
        space = SearchSpace(nodes=(45, 32, 22))
        first = explore(space, SETTINGS,
                        make_executor(tmp_path / "a"),
                        budget=10, seed=7)
        second = explore(space, SETTINGS,
                         make_executor(tmp_path / "b"),
                         budget=10, seed=7)
        assert [m.point.encode() for m in first.evaluated] \
            == [m.point.encode() for m in second.evaluated]
        assert [m.point.encode() for m in first.frontier] \
            == [m.point.encode() for m in second.frontier]
        assert first.evaluated == second.evaluated

    def test_rerun_is_pure_cache_hits(self, tmp_path):
        space = SearchSpace(nodes=(45, 32), pw_options=(0,))
        executor = make_executor(tmp_path)
        first = explore(space, SETTINGS, executor, budget=100, seed=0)
        assert first.executed > 0
        second = explore(space, SETTINGS, executor, budget=100, seed=0)
        assert second.executed == 0
        assert second.cache_hits == first.executed + first.cache_hits
        assert second.evaluated == first.evaluated
        assert second.frontier == first.frontier

    def test_frontier_members_are_non_dominated(self, tmp_path):
        from repro.explore.pareto import dominates, objective_vector

        space = SearchSpace(nodes=(45, 22))
        result = explore(space, SETTINGS, make_executor(tmp_path),
                         budget=100, seed=0)
        vectors = [objective_vector(m, result.objectives)
                   for m in result.evaluated]
        for member in result.frontier:
            mv = objective_vector(member, result.objectives)
            assert not any(dominates(v, mv) for v in vectors)


class TestReport:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        space = SearchSpace(nodes=(45, 32), pw_options=(0,))
        return explore(
            space, SETTINGS,
            make_executor(tmp_path_factory.mktemp("explore")),
            budget=100, seed=0,
        )

    def test_frontier_table_lists_members(self, result):
        text = frontier_table(result)
        assert "design point" in text
        assert "explore:" in text
        for member in result.frontier:
            assert member.point.encode() in text

    def test_csv_covers_every_evaluated_point(self, result):
        import csv
        import io

        rows = list(csv.DictReader(io.StringIO(to_csv(result))))
        assert len(rows) == len(result.evaluated)
        assert tuple(rows[0]) == CSV_FIELDS
        frontier = {m.point.encode() for m in result.frontier}
        for row in rows:
            on_frontier = row["design_point"] in frontier
            assert row["on_frontier"] == str(int(on_frontier))
            assert (row["dominance_rank"] == "0") == on_frontier
