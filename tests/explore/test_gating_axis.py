"""The gating-policy sweep axis: design points, search grid, reporting.

Covers the explorer half of the plane power-management feature: gated
design points encode/decode alongside the pre-gating spellings, the
grid crosses gating policies with every mix, and the CSV/table output
grows gating + leakage-share columns (the latter guarded against
zero-traffic division, the regression this file pins).
"""

import csv
import io

import pytest

from repro.explore import (
    EvaluationSettings,
    ExploreResult,
    SearchSpace,
    DesignPoint,
    PointMetrics,
    explore,
    runner_executor,
)
from repro.explore.report import CSV_FIELDS, frontier_table, leakage_share, to_csv
from repro.explore.search import _safe_ratio
from repro.harness.runner import ExperimentRunner, ResultCache
from repro.wires import WireClass

GATED = "idle:drowsy=16,gate=64"


def point(gating=""):
    return DesignPoint.from_mix(
        45, {WireClass.B: 144, WireClass.L: 36}, gating=gating,
    )


class TestDesignPointGating:
    def test_encode_decode_round_trip(self):
        p = point(GATED)
        assert p.encode().endswith(f"|g={GATED}")
        assert DesignPoint.decode(p.encode()) == p

    def test_ungated_encoding_is_unchanged(self):
        # Pre-gating encodings are cache keys; they must not move.
        p = point()
        assert p.encode() == "dp@n45:B144+L36:cw2|xbar4"
        assert DesignPoint.decode(p.encode()) == p

    def test_non_canonical_gating_rejected(self):
        with pytest.raises(ValueError, match="not canonical"):
            point("idle")
        with pytest.raises(ValueError, match="not canonical"):
            point("never")

    def test_malformed_suffix_rejected(self):
        with pytest.raises(ValueError, match="g="):
            DesignPoint.decode("dp@n45:B144+L36:cw2|xbar4|idle")

    def test_plans_carry_the_policy(self):
        plans = point(GATED).compile_plans(("gzip",), 800, 200, 42)
        assert all(p.gating_policy == GATED for p in plans)
        ungated = point().compile_plans(("gzip",), 800, 200, 42)
        assert all(p.gating_policy == "" for p in ungated)


class TestSearchSpaceGatingAxis:
    def test_grid_crosses_gating_with_mixes(self):
        space = SearchSpace(nodes=(45,), b_options=(144,),
                            pw_options=(0,), l_options=(0, 36),
                            gating_policies=("", GATED))
        points = space.points()
        assert len(points) == 4  # 2 mixes x 2 policies
        assert {p.gating for p in points} == {"", GATED}

    def test_neighbors_step_along_the_gating_axis(self):
        space = SearchSpace(nodes=(45,), b_options=(144,),
                            pw_options=(0,), l_options=(0,),
                            gating_policies=("", GATED))
        neighbors = space.neighbors(point())
        assert point(GATED) in neighbors
        # And every neighbor of a gated point keeps its policy except
        # the gating-axis step itself.
        back = space.neighbors(point(GATED))
        assert point() in back

    def test_bad_policies_rejected(self):
        with pytest.raises(ValueError, match="bad gating policy"):
            SearchSpace(nodes=(45,), gating_policies=("idle:bogus=1",))
        with pytest.raises(ValueError, match="not canonical"):
            SearchSpace(nodes=(45,), gating_policies=("never",))
        with pytest.raises(ValueError, match="at least one gating"):
            SearchSpace(nodes=(45,), gating_policies=())


def metrics(gating="", rel_dynamic=1.0, rel_leakage=1.0):
    return PointMetrics(
        point=point(gating), ipc=1.0, rel_delay=1.0,
        rel_dynamic=rel_dynamic, rel_leakage=rel_leakage,
        energy=100.0, ed2=100.0, area_mm2=1.0,
    )


def make_result(*points_metrics):
    return ExploreResult(
        evaluated=tuple(points_metrics),
        frontier=tuple(points_metrics[:1]),
        failures=(), space_size=len(points_metrics),
        executed=len(points_metrics), cache_hits=0,
    )


class TestLeakageShareReporting:
    def test_safe_ratio_guards_zero_denominator(self):
        assert _safe_ratio(5.0, 0.0) == 0.0
        assert _safe_ratio(5.0, 2.0) == 2.5

    def test_leakage_share_zero_traffic_point(self):
        # Regression: a point whose planes carried no traffic has zero
        # dynamic AND zero leakage -- the share must be 0.0, not a
        # ZeroDivisionError.
        assert leakage_share(
            metrics(rel_dynamic=0.0, rel_leakage=0.0)) == 0.0

    def test_leakage_share_ordinary_point(self):
        share = leakage_share(metrics(rel_dynamic=1.0, rel_leakage=1.0))
        assert 0.0 < share < 1.0

    def test_csv_appends_gating_columns_at_the_end(self):
        # Downstream notebooks index columns positionally; new fields
        # may only be appended.
        assert CSV_FIELDS[-2:] == ("gating", "leakage_share")
        rows = list(csv.DictReader(io.StringIO(to_csv(
            make_result(metrics(GATED), metrics())
        ))))
        assert rows[0]["gating"] == GATED
        assert rows[1]["gating"] == ""
        assert float(rows[0]["leakage_share"]) > 0.0

    def test_csv_zero_traffic_row_renders(self):
        rows = list(csv.DictReader(io.StringIO(to_csv(
            make_result(metrics(rel_dynamic=0.0, rel_leakage=0.0))
        ))))
        assert rows[0]["leakage_share"] == "0.000000"

    def test_frontier_table_shows_policy(self):
        text = frontier_table(make_result(metrics(GATED)))
        assert GATED in text
        assert "leak share" in text
        always = frontier_table(make_result(metrics()))
        assert "always-on" in always


class TestGatedExploreEndToEnd:
    def test_gated_frontier_comes_out_of_explore(self, tmp_path):
        space = SearchSpace(nodes=(45,), b_options=(144,),
                            pw_options=(288,), l_options=(36,),
                            gating_policies=("", GATED))
        settings = EvaluationSettings(benchmarks=("gzip",),
                                      instructions=800, warmup=200,
                                      seed=42)
        runner = ExperimentRunner(cache=ResultCache(tmp_path),
                                  verbose=False)
        result = explore(space, settings, runner_executor(runner),
                         budget=8)
        assert not result.failures
        by_gating = {m.point.gating: m for m in result.evaluated}
        assert set(by_gating) == {"", GATED}
        # The gated point must actually trade leakage for IPC.
        assert (by_gating[GATED].rel_leakage
                < by_gating[""].rel_leakage)
