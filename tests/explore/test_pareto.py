"""Pareto dominance invariants, property-tested with hypothesis."""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.explore.pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    dominance_ranks,
    dominates,
    objective_vector,
    pareto_frontier,
)


@dataclasses.dataclass(frozen=True)
class Candidate:
    ed2: float
    ipc: float
    energy: float
    area_mm2: float


values = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)

candidates = st.builds(Candidate, ed2=values, ipc=values,
                       energy=values, area_mm2=values)

candidate_lists = st.lists(candidates, min_size=0, max_size=40)

_KEY = lambda c: (c.ed2, c.ipc, c.energy, c.area_mm2)  # noqa: E731


class TestDominates:
    def test_strictly_better_everywhere(self):
        best = objective_vector(Candidate(1, 9, 1, 1), DEFAULT_OBJECTIVES)
        worse = objective_vector(Candidate(2, 8, 2, 2), DEFAULT_OBJECTIVES)
        assert dominates(best, worse)
        assert not dominates(worse, best)

    def test_maximized_objectives_are_negated(self):
        # Higher IPC must *help*: equal elsewhere, more IPC dominates.
        fast = objective_vector(Candidate(1, 9, 1, 1), DEFAULT_OBJECTIVES)
        slow = objective_vector(Candidate(1, 3, 1, 1), DEFAULT_OBJECTIVES)
        assert dominates(fast, slow)

    @given(candidates)
    def test_irreflexive(self, c):
        vec = objective_vector(c, DEFAULT_OBJECTIVES)
        assert not dominates(vec, vec)

    @given(candidates, candidates)
    def test_antisymmetric(self, a, b):
        u = objective_vector(a, DEFAULT_OBJECTIVES)
        v = objective_vector(b, DEFAULT_OBJECTIVES)
        assert not (dominates(u, v) and dominates(v, u))

    @given(candidates, candidates, candidates)
    def test_transitive(self, a, b, c):
        u, v, w = (objective_vector(x, DEFAULT_OBJECTIVES)
                   for x in (a, b, c))
        if dominates(u, v) and dominates(v, w):
            assert dominates(u, w)


class TestFrontier:
    @given(candidate_lists)
    @settings(max_examples=200)
    def test_no_frontier_member_is_dominated(self, items):
        frontier = pareto_frontier(items, DEFAULT_OBJECTIVES,
                                   sort_key=_KEY)
        vectors = [objective_vector(c, DEFAULT_OBJECTIVES)
                   for c in items]
        for member in frontier:
            mv = objective_vector(member, DEFAULT_OBJECTIVES)
            assert not any(dominates(v, mv) for v in vectors)

    @given(candidate_lists)
    @settings(max_examples=200)
    def test_every_non_member_is_dominated_or_duplicate(self, items):
        frontier = pareto_frontier(items, DEFAULT_OBJECTIVES,
                                   sort_key=_KEY)
        for c in items:
            if c in frontier:
                continue
            cv = objective_vector(c, DEFAULT_OBJECTIVES)
            assert any(
                dominates(objective_vector(m, DEFAULT_OBJECTIVES), cv)
                for m in frontier
            ) or any(objective_vector(m, DEFAULT_OBJECTIVES) == cv
                     for m in frontier)

    @given(candidate_lists, st.randoms(use_true_random=False))
    @settings(max_examples=200)
    def test_invariant_under_permutation(self, items, rng):
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert (pareto_frontier(items, DEFAULT_OBJECTIVES, sort_key=_KEY)
                == pareto_frontier(shuffled, DEFAULT_OBJECTIVES,
                                   sort_key=_KEY))

    @given(candidate_lists)
    @settings(max_examples=200)
    def test_invariant_under_duplication(self, items):
        assert (pareto_frontier(items, DEFAULT_OBJECTIVES, sort_key=_KEY)
                == pareto_frontier(items * 2, DEFAULT_OBJECTIVES,
                                   sort_key=_KEY))

    def test_single_objective_is_argmin(self):
        items = [Candidate(e, 1, 1, 1) for e in (5.0, 2.0, 7.0, 2.0)]
        frontier = pareto_frontier(items, (Objective("ed2"),),
                                   sort_key=_KEY)
        assert frontier == (Candidate(2.0, 1, 1, 1),)


class TestDominanceRanks:
    @given(candidate_lists)
    @settings(max_examples=100)
    def test_rank_zero_is_the_frontier(self, items):
        ranked = dominance_ranks(items, DEFAULT_OBJECTIVES,
                                 sort_key=_KEY)
        rank0 = tuple(c for rank, c in ranked if rank == 0)
        assert rank0 == pareto_frontier(items, DEFAULT_OBJECTIVES,
                                        sort_key=_KEY)

    @given(candidate_lists)
    @settings(max_examples=100)
    def test_every_item_is_ranked_once(self, items):
        ranked = dominance_ranks(items, DEFAULT_OBJECTIVES,
                                 sort_key=_KEY)
        assert sorted((c for _, c in ranked), key=_KEY) \
            == sorted(set(items), key=_KEY)

    def test_ranks_peel_in_layers(self):
        layers = [Candidate(r, 1, r, r) for r in (0.0, 1.0, 2.0)]
        ranked = dict(
            (c, rank)
            for rank, c in dominance_ranks(layers, DEFAULT_OBJECTIVES,
                                           sort_key=_KEY)
        )
        assert ranked == {layers[0]: 0, layers[1]: 1, layers[2]: 2}
