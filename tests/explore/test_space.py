"""Design points: validation, canonical encoding, plan compilation."""

import pytest

from repro.core.models import model, parse_design_point
from repro.explore import DesignPoint, baseline_point
from repro.explore.space import TOPOLOGIES
from repro.wires import WireClass


class TestDesignPoint:
    def test_from_mix_canonicalizes_order(self):
        point = DesignPoint.from_mix(
            32, {WireClass.L: 36, WireClass.B: 144}, "xbar4",
        )
        assert point.wires == (("B", 144), ("L", 36))
        assert point.model_name() == "dp@n32:B144+L36:cw2"
        assert point.encode() == "dp@n32:B144+L36:cw2|xbar4"

    def test_encode_decode_roundtrip(self):
        for point in (
            baseline_point(),
            DesignPoint.from_mix(22, {WireClass.PW: 288}, "ring16"),
            DesignPoint.from_mix(
                8, {WireClass.B: 288, WireClass.L: 72}, "xbar4",
                cache_width_factor=4,
            ),
        ):
            assert DesignPoint.decode(point.encode()) == point

    def test_num_clusters_follows_topology(self):
        for topology, clusters in TOPOLOGIES.items():
            point = DesignPoint.from_mix(
                45, {WireClass.B: 144}, topology,
            )
            assert point.num_clusters == clusters

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            DesignPoint.from_mix(45, {}, "xbar4")
        with pytest.raises(ValueError):
            DesignPoint.from_mix(90, {WireClass.B: 144}, "xbar4")
        with pytest.raises(ValueError):
            DesignPoint.from_mix(45, {WireClass.B: 144}, "torus")
        with pytest.raises(ValueError):
            DesignPoint.from_mix(45, {WireClass.B: 143}, "xbar4")
        with pytest.raises(ValueError):
            DesignPoint.from_mix(45, {WireClass.B: -4}, "xbar4")

    def test_decode_rejects_malformed(self):
        for text in (
            "dp@n45:B144:cw2",          # missing topology
            "dp@n45:B144:cw2|torus",    # unknown topology
            "II|xbar4",                 # not a design point
            "dp@n45:L36+B144:cw2|xbar4",  # non-canonical order
        ):
            with pytest.raises(ValueError):
                DesignPoint.decode(text)

    def test_model_name_parses_back(self):
        point = DesignPoint.from_mix(
            16, {WireClass.B: 144, WireClass.PW: 288}, "xbar4",
        )
        node, wires, cwf = parse_design_point(point.model_name())
        assert node == 16
        assert wires == point.wire_mapping()
        assert cwf == 2

    def test_model_resolves_with_scaled_specs(self):
        scaled = model("dp@n22:B144+L36:cw2")
        anchor = model("dp@n45:B144+L36:cw2")
        assert scaled.config.wires == anchor.config.wires
        # The 22 nm catalog differs from Table 2's 45 nm values.
        assert scaled.config.wire_specs != anchor.config.wire_specs

    def test_latency_scale_anchors_at_45(self):
        assert baseline_point().latency_scale() == 1.0
        assert DesignPoint.from_mix(
            22, {WireClass.B: 144}, "xbar4",
        ).latency_scale() > 1.0

    def test_compile_plans(self):
        point = DesignPoint.from_mix(
            32, {WireClass.B: 144, WireClass.L: 36}, "ring16",
        )
        plans = point.compile_plans(
            benchmarks=("gzip", "mesa"), instructions=5000,
            warmup=500, seed=7,
        )
        assert [p.benchmark for p in plans] == ["gzip", "mesa"]
        for plan in plans:
            assert plan.model_name == point.model_name()
            assert plan.num_clusters == 16
            assert plan.latency_scale == point.latency_scale()
            assert plan.instructions == 5000
            assert plan.warmup == 500
            assert plan.seed == 7
        # Distinct points produce distinct cache keys.
        other = point.compile_plans(
            benchmarks=("gzip",), instructions=5000, warmup=500, seed=7,
        )[0]
        assert other.cache_key() == plans[0].cache_key()
        different = DesignPoint.from_mix(
            22, {WireClass.B: 144, WireClass.L: 36}, "ring16",
        ).compile_plans(
            benchmarks=("gzip",), instructions=5000, warmup=500, seed=7,
        )[0]
        assert different.cache_key() != plans[0].cache_key()
