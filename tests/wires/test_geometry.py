"""Tests for the RC wire geometry model (paper equations (1) and (2))."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.wires.geometry import (
    EPS0,
    WireGeometry,
    delay_ratio,
    minimum_width_geometry,
)


def nm(x):
    return x * 1e-9


@pytest.fixture
def base():
    return minimum_width_geometry(45.0)


class TestResistance:
    def test_equation_1_exact(self):
        """R = rho / ((thickness - barrier) * (width - 2*barrier))."""
        g = WireGeometry(width=nm(100), spacing=nm(100),
                         thickness=nm(200), layer_spacing=nm(200),
                         barrier=nm(5), rho=2.0e-8)
        expected = 2.0e-8 / ((nm(200) - nm(5)) * (nm(100) - 2 * nm(5)))
        assert g.resistance_per_m() == pytest.approx(expected)

    def test_wider_wire_lower_resistance(self, base):
        wide = base.scaled(width_factor=2.0)
        assert wide.resistance_per_m() < base.resistance_per_m()

    def test_width_8x_gives_roughly_one_eighth_r(self, base):
        """The paper's L-Wire derivation: R_L ~ 0.125 R_W."""
        lwire = base.scaled(width_factor=8.0, spacing_factor=8.0)
        ratio = lwire.resistance_per_m() / base.resistance_per_m()
        # Slightly below 1/8 because the fixed barrier is amortized.
        assert 0.10 < ratio < 0.13

    def test_rejects_width_smaller_than_barrier(self):
        with pytest.raises(ValueError):
            WireGeometry(width=nm(6), spacing=nm(45), thickness=nm(100),
                         layer_spacing=nm(90), barrier=nm(4))

    def test_rejects_nonpositive_spacing(self):
        with pytest.raises(ValueError):
            WireGeometry(width=nm(45), spacing=0.0, thickness=nm(100),
                         layer_spacing=nm(90))


class TestCapacitance:
    def test_equation_2_structure(self):
        """Capacitance decomposes into sidewall + vertical + fringe."""
        g = WireGeometry(width=nm(100), spacing=nm(50), thickness=nm(200),
                         layer_spacing=nm(100), miller_k=1.5,
                         eps_horiz=3.0, eps_vert=2.0, fringe_per_m=1e-11)
        sidewall = 2 * 1.5 * 3.0 * (nm(200) / nm(50))
        vertical = 2 * 2.0 * (nm(100) / nm(100))
        expected = EPS0 * (sidewall + vertical) + 1e-11
        assert g.capacitance_per_m() == pytest.approx(expected)

    def test_wider_spacing_lower_capacitance(self, base):
        spaced = base.scaled(spacing_factor=3.0)
        assert spaced.capacitance_per_m() < base.capacitance_per_m()

    def test_wider_wire_slightly_higher_capacitance(self, base):
        """Width raises the vertical plate term only -- a modest increase."""
        wide = base.scaled(width_factor=2.0)
        ratio = wide.capacitance_per_m() / base.capacitance_per_m()
        assert 1.0 < ratio < 1.3


class TestDelay:
    def test_unbuffered_delay_quadratic_in_length(self, base):
        d1 = base.unbuffered_delay(1e-3)
        d2 = base.unbuffered_delay(2e-3)
        assert d2 == pytest.approx(4 * d1)

    def test_wide_spaced_wire_is_faster(self, base):
        """Section 2: more metal area per wire means lower delay."""
        fat = base.scaled(width_factor=4.0, spacing_factor=4.0)
        assert delay_ratio(fat, base) < 1.0

    def test_paper_lwire_delay_ratio(self, base):
        """8x width/spacing lands near the paper's 0.3 relative delay."""
        lwire = base.scaled(width_factor=8.0, spacing_factor=8.0)
        ratio = delay_ratio(lwire, base)
        assert 0.2 < ratio < 0.45


class TestHelpers:
    def test_pitch(self, base):
        assert base.pitch == pytest.approx(base.width + base.spacing)

    def test_tracks_per_metal_area(self, base):
        fat = base.scaled(width_factor=8.0, spacing_factor=8.0)
        assert fat.tracks_per_metal_area(base) == pytest.approx(1.0 / 8.0)

    def test_minimum_width_rejects_bad_node(self):
        with pytest.raises(ValueError):
            minimum_width_geometry(0)

    def test_scaled_rejects_nonpositive(self, base):
        with pytest.raises(ValueError):
            base.scaled(width_factor=0.0)


class TestGeometryProperties:
    @given(w=st.floats(min_value=1.2, max_value=16.0),
           s=st.floats(min_value=1.0, max_value=16.0))
    def test_rc_product_decreases_with_area(self, w, s):
        """Growing width and spacing never increases the RC product."""
        base = minimum_width_geometry(45.0)
        scaled = base.scaled(width_factor=w, spacing_factor=s)
        if w >= 1.0 and s >= 1.0:
            assert scaled.rc_per_m2() <= base.rc_per_m2() * 1.2

    @given(factor=st.floats(min_value=1.0, max_value=32.0))
    def test_resistance_strictly_decreases_with_width(self, factor):
        base = minimum_width_geometry(65.0)
        wide = base.scaled(width_factor=factor)
        if factor > 1.0:
            assert wide.resistance_per_m() < base.resistance_per_m()
        else:
            assert wide.resistance_per_m() == pytest.approx(
                base.resistance_per_m()
            )

    @given(nm_node=st.floats(min_value=20.0, max_value=250.0))
    def test_delay_ratio_is_symmetric_inverse(self, nm_node):
        a = minimum_width_geometry(nm_node)
        b = a.scaled(width_factor=2.0, spacing_factor=3.0)
        assert delay_ratio(a, b) == pytest.approx(1.0 / delay_ratio(b, a))
        assert delay_ratio(a, a) == pytest.approx(1.0)

    def test_delay_ratio_consistent_with_rc(self):
        a = minimum_width_geometry(45.0)
        b = a.scaled(width_factor=3.0, spacing_factor=2.0)
        assert delay_ratio(b, a) == pytest.approx(
            math.sqrt(b.rc_per_m2() / a.rc_per_m2())
        )
