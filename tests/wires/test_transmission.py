"""Tests for the transmission-line wire model."""

import pytest
from hypothesis import given, strategies as st

from repro.wires.geometry import minimum_width_geometry
from repro.wires.repeaters import optimal_repeater_config, repeated_wire_delay
from repro.wires.transmission import (
    SPEED_OF_LIGHT,
    TransmissionLineSpec,
    transmission_line_speedup,
)


class TestTransmissionLine:
    def test_velocity_below_light_speed(self):
        line = TransmissionLineSpec()
        assert 0 < line.propagation_velocity() < SPEED_OF_LIGHT

    def test_ideal_velocity_formula(self):
        line = TransmissionLineSpec(relative_dielectric=4.0,
                                    velocity_factor=1.0)
        assert line.propagation_velocity() == pytest.approx(
            SPEED_OF_LIGHT / 2.0
        )

    def test_delay_linear_in_length(self):
        line = TransmissionLineSpec()
        assert line.delay(20e-3) == pytest.approx(2 * line.delay(10e-3))

    def test_zero_length_zero_delay(self):
        assert TransmissionLineSpec().delay(0.0) == 0.0

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            TransmissionLineSpec().delay(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransmissionLineSpec(relative_dielectric=0.5)
        with pytest.raises(ValueError):
            TransmissionLineSpec(velocity_factor=0.0)
        with pytest.raises(ValueError):
            TransmissionLineSpec(width=-1.0)
        with pytest.raises(ValueError):
            TransmissionLineSpec(shield_overhead=-0.1)

    def test_effective_pitch_charges_shields(self):
        line = TransmissionLineSpec(width=2e-6, shield_overhead=2.0)
        assert line.effective_pitch(2e-6) == pytest.approx(12e-6)

    def test_effective_pitch_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            TransmissionLineSpec().effective_pitch(0.0)


class TestSpeedupVsRC:
    def test_faster_than_repeated_rc_wire(self):
        """Chang et al.: transmission lines beat equally-wide RC wires;
        the paper quotes a 4/3 factor at 180nm, growing at smaller nodes."""
        geom = minimum_width_geometry(45.0).scaled(8.0, 8.0)
        cfg = optimal_repeater_config(geom)
        rc_delay = repeated_wire_delay(geom, cfg, 10e-3)
        line = TransmissionLineSpec()
        speedup = transmission_line_speedup(rc_delay, line, 10e-3)
        assert speedup > 4.0 / 3.0

    def test_rejects_nonpositive_rc_delay(self):
        with pytest.raises(ValueError):
            transmission_line_speedup(0.0, TransmissionLineSpec(), 1e-3)

    @given(length=st.floats(min_value=1e-4, max_value=5e-2))
    def test_speedup_scales_inverse_with_line_delay(self, length):
        line = TransmissionLineSpec()
        rc = 1e-9
        assert transmission_line_speedup(rc, line, length) == pytest.approx(
            rc / line.delay(length)
        )
