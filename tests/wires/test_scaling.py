"""Technology-node scaling: golden 45 nm identity and factor sanity."""

import dataclasses

import pytest

from repro.wires import (
    CANONICAL_SPECS,
    CROSSBAR_LATENCY,
    FREQ_BASE_GHZ,
    RING_HOP_LATENCY,
    SCALING_PROFILES,
    SUPPORTED_NODES,
    VDD_BASE_V,
    WireClass,
    clock_frequency_ghz,
    link_length_m,
    link_metal_area_mm2,
    node_scaling,
    scale_catalog,
    supply_voltage,
)
from repro.wires.scaling import REFERENCE_LENGTH


class TestGolden45nm:
    """scale_catalog(45) must be *bit-identical* to Table 2.

    All downstream 45 nm results (the paper's tables, every cached
    sweep) flow through the canonical catalog; the scaling layer must
    be a perfect no-op at its anchor node.
    """

    def test_specs_bit_identical(self):
        catalog = scale_catalog(45)
        assert set(catalog.specs) == set(CANONICAL_SPECS)
        for wc, spec in CANONICAL_SPECS.items():
            scaled = catalog.specs[wc]
            for field in dataclasses.fields(spec):
                canonical = getattr(spec, field.name)
                value = getattr(scaled, field.name)
                assert value == canonical, (wc, field.name)
                # Bit-identity, not approximate equality: repr must
                # match so cache keys and rendered tables agree too.
                assert repr(value) == repr(canonical), (wc, field.name)

    def test_latencies_identical(self):
        catalog = scale_catalog(45)
        assert catalog.crossbar_latency == CROSSBAR_LATENCY
        assert catalog.ring_hop_latency == RING_HOP_LATENCY

    def test_scaling_factors_are_exactly_one(self):
        scaling = node_scaling(45)
        assert scaling.latency_factor == 1.0
        assert scaling.dynamic_scale == 1.0
        assert scaling.leakage_scale == 1.0
        assert scaling.area_scale == 1.0
        assert scaling.vdd == VDD_BASE_V
        assert scaling.frequency_ghz == FREQ_BASE_GHZ

    def test_both_profiles_anchor_at_45(self):
        for profile in SCALING_PROFILES:
            scaling = node_scaling(45, profile)
            assert scaling.latency_factor == 1.0
            assert scaling.dynamic_scale == 1.0
            assert scaling.leakage_scale == 1.0


class TestScalingTrends:
    def test_vdd_monotonically_nonincreasing(self):
        for profile in SCALING_PROFILES:
            vdds = [supply_voltage(n, profile) for n in SUPPORTED_NODES]
            assert vdds == sorted(vdds, reverse=True)

    def test_dynamic_energy_falls_with_shrink(self):
        scales = [node_scaling(n).dynamic_scale for n in SUPPORTED_NODES]
        assert scales == sorted(scales, reverse=True)
        assert all(s > 0 for s in scales)

    def test_leakage_grows_with_shrink(self):
        scales = [node_scaling(n).leakage_scale for n in SUPPORTED_NODES]
        assert scales == sorted(scales)

    def test_wire_latency_in_cycles_worsens_past_32(self):
        # The motivating trend of the paper: wires scale worse than
        # logic, so cross-chip latency in *cycles* grows as clocks
        # outpace RC delay improvements.
        assert node_scaling(32).latency_factor > 1.0
        assert node_scaling(22).latency_factor \
            > node_scaling(32).latency_factor

    def test_area_halves_per_generation(self):
        areas = [node_scaling(n).area_scale for n in SUPPORTED_NODES]
        for prev, cur in zip(areas, areas[1:]):
            assert cur == pytest.approx(prev / 2)

    def test_link_length_shrinks_with_die(self):
        lengths = [link_length_m(n) for n in SUPPORTED_NODES]
        assert lengths == sorted(lengths, reverse=True)
        assert lengths[0] == REFERENCE_LENGTH

    def test_metal_area_positive_and_node_dependent(self):
        a45 = link_metal_area_mm2(144, 45)
        a22 = link_metal_area_mm2(144, 22)
        assert a45 > a22 > 0


class TestScaledCatalogs:
    @pytest.mark.parametrize("node", SUPPORTED_NODES)
    def test_catalog_preserves_class_structure(self, node):
        catalog = scale_catalog(node)
        assert set(catalog.specs) == set(CANONICAL_SPECS)
        assert set(catalog.crossbar_latency) == set(CROSSBAR_LATENCY)
        assert set(catalog.ring_hop_latency) == set(RING_HOP_LATENCY)
        # Relative orderings of Table 2 survive: L beats B beats PW on
        # delay, PW beats W on dynamic energy, at every node.
        specs = catalog.specs
        assert (specs[WireClass.L].relative_delay
                < specs[WireClass.B].relative_delay
                < specs[WireClass.PW].relative_delay)
        assert (specs[WireClass.PW].relative_dynamic_energy
                < specs[WireClass.W].relative_dynamic_energy)
        # Latencies stay whole positive cycles.
        for table in (catalog.crossbar_latency, catalog.ring_hop_latency):
            for latency in table.values():
                assert isinstance(latency, int) and latency >= 1

    @pytest.mark.parametrize("node", SUPPORTED_NODES)
    def test_area_factors_never_scale(self, node):
        # Area factors are *relative track widths* -- dimensionless
        # within a node -- so they are node-invariant by construction.
        for wc, spec in scale_catalog(node).specs.items():
            assert spec.area_factor == CANONICAL_SPECS[wc].area_factor

    def test_l_wire_advantage_erodes_at_small_nodes(self):
        # At 45 nm an L-Wire crossbar traversal takes 1 cycle vs B's 2;
        # deeper nodes stretch both, keeping L strictly faster.
        for node in SUPPORTED_NODES[1:]:
            catalog = scale_catalog(node)
            assert (catalog.crossbar_latency[WireClass.L]
                    < catalog.crossbar_latency[WireClass.B])


class TestValidation:
    def test_unsupported_node_rejected(self):
        with pytest.raises(ValueError, match="node"):
            scale_catalog(28)
        with pytest.raises(ValueError, match="node"):
            node_scaling(90)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            node_scaling(32, "moore")

    def test_conservative_profile_scales_less(self):
        # The "cons" profile clocks slower than ITRS at every shrink,
        # so its latency penalty (cycles per traversal) is milder.
        for node in SUPPORTED_NODES[2:]:
            assert (clock_frequency_ghz(node, "cons")
                    < clock_frequency_ghz(node, "itrs"))
            assert (node_scaling(node, "cons").latency_factor
                    < node_scaling(node, "itrs").latency_factor)

    def test_determinism(self):
        assert scale_catalog(22) == scale_catalog(22)
        assert node_scaling(16) == node_scaling(16)
