"""Tests for repeater insertion: delay-optimal and power-optimal designs."""

import pytest
from hypothesis import given, strategies as st

from repro.wires.geometry import minimum_width_geometry
from repro.wires.repeaters import (
    RepeaterConfig,
    optimal_repeater_config,
    power_optimal_repeater_config,
    repeated_wire_delay,
    repeated_wire_dynamic_energy,
    repeated_wire_leakage_power,
)

LENGTH = 10e-3  # 10 mm global wire


@pytest.fixture
def geom():
    return minimum_width_geometry(45.0)


@pytest.fixture
def optimal(geom):
    return optimal_repeater_config(geom)


class TestRepeaterConfig:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            RepeaterConfig(size=0, spacing=1e-3)

    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            RepeaterConfig(size=100, spacing=0)

    def test_count_for_length(self):
        cfg = RepeaterConfig(size=100, spacing=1e-3)
        assert cfg.count_for(10e-3) == 10
        assert cfg.count_for(10.5e-3) == 11
        assert cfg.count_for(0.0) == 1

    def test_count_rejects_negative_length(self):
        with pytest.raises(ValueError):
            RepeaterConfig(size=100, spacing=1e-3).count_for(-1.0)


class TestOptimalConfig:
    def test_optimal_size_is_large(self, optimal):
        """Banerjee et al.: optimal repeaters are hundreds of times the
        minimum inverter at sub-100nm nodes."""
        assert optimal.size > 30

    def test_optimal_is_a_delay_minimum(self, geom, optimal):
        """Perturbing size or spacing in either direction never helps."""
        best = repeated_wire_delay(geom, optimal, LENGTH)
        for size_f in (0.5, 2.0):
            for spacing_f in (0.5, 2.0):
                perturbed = RepeaterConfig(
                    size=optimal.size * size_f,
                    spacing=optimal.spacing * spacing_f,
                )
                assert repeated_wire_delay(geom, perturbed, LENGTH) >= best

    def test_repeated_delay_linear_in_length(self, geom, optimal):
        d1 = repeated_wire_delay(geom, optimal, 5e-3)
        d2 = repeated_wire_delay(geom, optimal, 10e-3)
        assert d2 == pytest.approx(2 * d1, rel=0.15)

    def test_repeated_beats_unbuffered_for_long_wires(self, geom, optimal):
        assert repeated_wire_delay(geom, optimal, LENGTH) < (
            geom.unbuffered_delay(LENGTH)
        )


class TestPowerOptimalConfig:
    def test_smaller_and_sparser_than_optimal(self, geom, optimal):
        pw = power_optimal_repeater_config(geom, delay_penalty=1.2)
        assert pw.size < optimal.size
        assert pw.spacing > optimal.spacing

    def test_saves_energy(self, geom, optimal):
        """The PW design point must spend less dynamic energy and leak
        less than the delay-optimal wire."""
        pw = power_optimal_repeater_config(geom, delay_penalty=1.2)
        assert repeated_wire_dynamic_energy(geom, pw, LENGTH) < (
            repeated_wire_dynamic_energy(geom, optimal, LENGTH)
        )
        assert repeated_wire_leakage_power(pw, LENGTH) < (
            repeated_wire_leakage_power(optimal, LENGTH)
        )

    def test_costs_delay(self, geom, optimal):
        pw = power_optimal_repeater_config(geom, delay_penalty=1.2)
        assert repeated_wire_delay(geom, pw, LENGTH) > (
            repeated_wire_delay(geom, optimal, LENGTH)
        )

    def test_delay_penalty_near_requested(self, geom, optimal):
        """A 20% requested penalty should land within a loose band."""
        pw = power_optimal_repeater_config(geom, delay_penalty=1.2)
        ratio = repeated_wire_delay(geom, pw, LENGTH) / (
            repeated_wire_delay(geom, optimal, LENGTH)
        )
        assert 1.05 < ratio < 1.6

    def test_penalty_one_is_optimal(self, geom, optimal):
        same = power_optimal_repeater_config(geom, delay_penalty=1.0)
        assert same.size == pytest.approx(optimal.size)
        assert same.spacing == pytest.approx(optimal.spacing)

    def test_rejects_penalty_below_one(self, geom):
        with pytest.raises(ValueError):
            power_optimal_repeater_config(geom, delay_penalty=0.9)

    @given(penalty=st.floats(min_value=1.0, max_value=3.0))
    def test_energy_monotone_in_penalty(self, penalty):
        """More allowed delay never costs more energy."""
        geom = minimum_width_geometry(45.0)
        base = power_optimal_repeater_config(geom, delay_penalty=1.0)
        relaxed = power_optimal_repeater_config(geom, delay_penalty=penalty)
        assert repeated_wire_dynamic_energy(geom, relaxed, LENGTH) <= (
            repeated_wire_dynamic_energy(geom, base, LENGTH) * 1.001
        )


class TestEnergyModel:
    def test_energy_scales_with_length(self, geom, optimal):
        e1 = repeated_wire_dynamic_energy(geom, optimal, 5e-3)
        e2 = repeated_wire_dynamic_energy(geom, optimal, 10e-3)
        assert e2 == pytest.approx(2 * e1, rel=0.2)

    def test_rejects_nonpositive_length(self, geom, optimal):
        with pytest.raises(ValueError):
            repeated_wire_dynamic_energy(geom, optimal, 0.0)
        with pytest.raises(ValueError):
            repeated_wire_delay(geom, optimal, -1.0)
        with pytest.raises(ValueError):
            repeated_wire_leakage_power(optimal, 0.0)
