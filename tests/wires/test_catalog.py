"""Tests for Table 2: canonical values and their analytic derivation."""

import math

import pytest

from repro.wires import (
    CANONICAL_SPECS,
    CROSSBAR_LATENCY,
    RING_HOP_LATENCY,
    WireClass,
    WireSpec,
    derive_wire_spec,
    derived_delay_ratio_l_vs_w,
    paper_delay_ratio_l_vs_w,
    table2_rows,
)


class TestCanonicalTable2:
    """The exact numbers of the paper's Table 2."""

    def test_relative_delays(self):
        assert CANONICAL_SPECS[WireClass.W].relative_delay == 1.0
        assert CANONICAL_SPECS[WireClass.PW].relative_delay == 1.2
        assert CANONICAL_SPECS[WireClass.B].relative_delay == 0.8
        assert CANONICAL_SPECS[WireClass.L].relative_delay == 0.3

    def test_crossbar_latencies(self):
        assert CROSSBAR_LATENCY[WireClass.PW] == 3
        assert CROSSBAR_LATENCY[WireClass.B] == 2
        assert CROSSBAR_LATENCY[WireClass.L] == 1

    def test_ring_hop_latencies(self):
        assert RING_HOP_LATENCY[WireClass.PW] == 6
        assert RING_HOP_LATENCY[WireClass.B] == 4
        assert RING_HOP_LATENCY[WireClass.L] == 2

    def test_relative_leakage(self):
        assert CANONICAL_SPECS[WireClass.W].relative_leakage == 1.00
        assert CANONICAL_SPECS[WireClass.PW].relative_leakage == 0.30
        assert CANONICAL_SPECS[WireClass.B].relative_leakage == 0.55
        assert CANONICAL_SPECS[WireClass.L].relative_leakage == 0.79

    def test_relative_dynamic(self):
        assert CANONICAL_SPECS[WireClass.W].relative_dynamic_energy == 1.00
        assert CANONICAL_SPECS[WireClass.PW].relative_dynamic_energy == 0.30
        assert CANONICAL_SPECS[WireClass.B].relative_dynamic_energy == 0.58
        assert CANONICAL_SPECS[WireClass.L].relative_dynamic_energy == 0.84

    def test_area_factors_match_section_3(self):
        """18 L-Wires occupy the same metal area as 72 B-Wires, and a
        B-Wire has twice the metal area of a W/PW-Wire."""
        area = {wc: s.area_factor for wc, s in CANONICAL_SPECS.items()}
        assert 18 * area[WireClass.L] == 72 * area[WireClass.B] / 2 * 2
        assert area[WireClass.B] == 2 * area[WireClass.W]
        assert area[WireClass.PW] == area[WireClass.W]

    def test_rows_cover_all_classes_in_order(self):
        rows = table2_rows()
        assert [r.wire_class for r in rows] == [
            WireClass.W, WireClass.PW, WireClass.B, WireClass.L,
        ]
        w_row = rows[0]
        assert w_row.crossbar_latency is None  # W-Wires not deployed

    def test_latency_ordering(self):
        """L faster than B faster than PW, everywhere."""
        for table in (CROSSBAR_LATENCY, RING_HOP_LATENCY):
            assert table[WireClass.L] < table[WireClass.B] < table[WireClass.PW]


class TestWireSpecValidation:
    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError):
            WireSpec(WireClass.B, relative_delay=0.0,
                     relative_dynamic_energy=1.0, relative_leakage=1.0,
                     area_factor=1.0)

    def test_wires_per_budget(self):
        lspec = CANONICAL_SPECS[WireClass.L]
        # 288 W-tracks (the Model I budget) fit 36 L-Wires.
        assert lspec.wires_per_budget(288) == 36
        bspec = CANONICAL_SPECS[WireClass.B]
        assert bspec.wires_per_budget(288) == 144

    def test_wires_per_budget_rejects_negative(self):
        with pytest.raises(ValueError):
            CANONICAL_SPECS[WireClass.B].wires_per_budget(-1)


class TestDerivation:
    """The analytic RC models must preserve every qualitative ordering
    the paper's mechanism choices rest on."""

    @pytest.fixture(scope="class")
    def derived(self):
        return {wc: derive_wire_spec(wc) for wc in WireClass}

    def test_delay_ordering(self, derived):
        assert (derived[WireClass.L].relative_delay
                < derived[WireClass.B].relative_delay
                < derived[WireClass.W].relative_delay
                < derived[WireClass.PW].relative_delay)

    def test_pw_saves_energy(self, derived):
        assert (derived[WireClass.PW].relative_dynamic_energy
                < derived[WireClass.W].relative_dynamic_energy)
        assert (derived[WireClass.PW].relative_leakage
                < derived[WireClass.W].relative_leakage)

    def test_l_wire_delay_near_paper_value(self, derived):
        """Paper: Delay_L = 0.3 Delay_W (via R_L = 0.125 R_W, C_L = 0.8 C_W)."""
        assert 0.15 < derived[WireClass.L].relative_delay < 0.5

    def test_area_factors_derived_exactly(self, derived):
        assert derived[WireClass.B].area_factor == pytest.approx(2.0)
        assert derived[WireClass.L].area_factor == pytest.approx(8.0)
        assert derived[WireClass.W].area_factor == pytest.approx(1.0)

    def test_pw_delay_penalty_band(self, derived):
        assert 1.0 < derived[WireClass.PW].relative_delay < 1.7

    def test_sqrt_rc_ratio_near_paper(self):
        assert paper_delay_ratio_l_vs_w() == pytest.approx(
            math.sqrt(0.1), rel=1e-6
        )
        assert abs(derived_delay_ratio_l_vs_w() - paper_delay_ratio_l_vs_w()) < 0.2
