"""Tests for the dynamic steering heuristic and criticality predictor."""

import pytest

from repro.clusters.cluster import Cluster
from repro.clusters.criticality import CriticalityPredictor
from repro.clusters.steering import SteeringHeuristic, SteeringWeights
from repro.core.instruction import DynInstr
from repro.interconnect.topology import CrossbarTopology, HierarchicalTopology
from repro.workloads.trace import InstructionRecord, OpClass


def make_instr(seq, op=OpClass.IALU, dest=5, pc=None):
    rec = InstructionRecord(pc=pc if pc is not None else 0x400000 + 4 * seq,
                            op=op, dest=dest, srcs=(1,))
    return DynInstr(seq, rec)


def make_clusters(n=4, iq=15, regs=32):
    return [Cluster(i, f"c{i}", iq, regs) for i in range(n)]


@pytest.fixture
def steering():
    clusters = make_clusters()
    return SteeringHeuristic(clusters, CrossbarTopology(4)), clusters


class TestDependenceSteering:
    def test_follows_single_producer(self, steering):
        heur, clusters = steering
        producer = make_instr(0)
        producer.cluster = 2
        consumer = make_instr(1)
        chosen = heur.choose(consumer, [(1, producer)])
        assert chosen.index == 2

    def test_majority_producer_cluster_wins(self, steering):
        heur, clusters = steering
        p1, p2, p3 = make_instr(0), make_instr(1), make_instr(2)
        p1.cluster = p2.cluster = 1
        p3.cluster = 3
        consumer = make_instr(3)
        chosen = heur.choose(consumer, [(1, p1), (2, p2), (3, p3)])
        assert chosen.index == 1

    def test_no_producers_balances_load(self, steering):
        heur, clusters = steering
        # Fill cluster 0 partially; an independent instruction should
        # prefer an emptier cluster.
        for i in range(10):
            clusters[0].admit(make_instr(100 + i))
        chosen = heur.choose(make_instr(0), [])
        assert chosen.index != 0


class TestResourceFallback:
    def test_full_cluster_overflows_to_neighbor(self):
        clusters = make_clusters(iq=2, regs=2)
        heur = SteeringHeuristic(clusters, CrossbarTopology(4))
        producer = make_instr(0)
        producer.cluster = 1
        clusters[1].admit(make_instr(10))
        clusters[1].admit(make_instr(11))
        chosen = heur.choose(make_instr(1), [(1, producer)])
        assert chosen is not None
        assert chosen.index != 1
        assert heur.overflowed == 1

    def test_all_full_returns_none(self):
        clusters = make_clusters(iq=1, regs=1)
        heur = SteeringHeuristic(clusters, CrossbarTopology(4))
        for i, cluster in enumerate(clusters):
            cluster.admit(make_instr(10 + i))
        assert heur.choose(make_instr(0), []) is None


class TestCacheProximity:
    def test_hierarchical_loads_prefer_cache_group(self):
        """On the 16-cluster ring the cache hangs off group 0, so loads
        with no other pull steer there."""
        clusters = make_clusters(16)
        heur = SteeringHeuristic(clusters, HierarchicalTopology(16))
        load = make_instr(0, op=OpClass.LOAD)
        chosen = heur.choose(load, [])
        assert chosen.index in (0, 1, 2, 3)

    def test_crossbar_proximity_uniform(self, steering):
        heur, clusters = steering
        load = make_instr(0, op=OpClass.LOAD)
        chosen = heur.choose(load, [])
        assert chosen is not None  # all clusters equidistant; any is fine


class TestHierarchicalAffinity:
    def test_consumer_lands_in_producer_group(self):
        clusters = make_clusters(16)
        heur = SteeringHeuristic(clusters, HierarchicalTopology(16))
        producer = make_instr(0)
        producer.cluster = 9  # group 2
        consumer = make_instr(1)
        chosen = heur.choose(consumer, [(1, producer)])
        assert chosen.index // 4 == 2


class TestCriticalityPredictor:
    def test_training_raises_criticality(self):
        pred = CriticalityPredictor(64)
        for _ in range(3):
            pred.train(0x400000, [0x400004])
        assert pred.is_critical(0x400000)
        assert not pred.is_critical(0x400004)

    def test_pick_critical_prefers_highest_counter(self):
        pred = CriticalityPredictor(64)
        pred.train(0x400000, [])
        pred.train(0x400000, [])
        pred.train(0x400000, [])
        pred.train(0x400004, [])
        pred.train(0x400004, [])
        assert pred.pick_critical([0x400004, 0x400000]) == 1

    def test_pick_critical_none_when_untrained(self):
        pred = CriticalityPredictor(64)
        assert pred.pick_critical([0x400000, 0x400004]) is None

    def test_counter_decay_for_noncritical(self):
        pred = CriticalityPredictor(64)
        for _ in range(3):
            pred.train(0x400000, [])
        pred.train(0x400004, [0x400000])
        pred.train(0x400004, [0x400000])
        assert pred.pick_critical([0x400000, 0x400004]) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            CriticalityPredictor(100)
        with pytest.raises(ValueError):
            CriticalityPredictor(64, threshold=5)

    def test_critical_producer_attracts_consumer(self):
        clusters = make_clusters(4)
        crit = CriticalityPredictor(64)
        for _ in range(3):
            crit.train(0x400000, [0x400004])
        heur = SteeringHeuristic(
            clusters, CrossbarTopology(4),
            SteeringWeights(dependence=1.0, critical_bonus=5.0),
            criticality=crit,
        )
        critical_producer = make_instr(0, pc=0x400000)
        critical_producer.cluster = 3
        other = make_instr(1, pc=0x400004)
        other.cluster = 1
        consumer = make_instr(2)
        chosen = heur.choose(
            consumer, [(1, critical_producer), (2, other)]
        )
        assert chosen.index == 3


class TestValidation:
    def test_needs_clusters(self):
        with pytest.raises(ValueError):
            SteeringHeuristic([], CrossbarTopology(4))
