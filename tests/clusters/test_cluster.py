"""Tests for cluster resources and the wakeup/select machinery."""

import pytest

from repro.clusters.cluster import FU_POOL, Cluster, uses_fp_resources
from repro.core.instruction import DynInstr
from repro.workloads.trace import InstructionRecord, OpClass


def make_instr(seq, op=OpClass.IALU, dest=5):
    rec = InstructionRecord(pc=0x400000 + 4 * seq, op=op, dest=dest,
                            srcs=(1,))
    return DynInstr(seq, rec)


@pytest.fixture
def cluster():
    return Cluster(0, "c0", iq_size=4, regfile_size=4)


class TestResources:
    def test_admit_consumes_iq_and_register(self, cluster):
        instr = make_instr(0)
        cluster.admit(instr)
        assert cluster.free_int_iq == 3
        assert cluster.free_int_regs == 3
        assert instr.cluster == 0

    def test_store_consumes_no_register(self, cluster):
        instr = make_instr(0, op=OpClass.STORE, dest=-1)
        cluster.admit(instr)
        assert cluster.free_int_regs == 4
        assert cluster.free_int_iq == 3

    def test_fp_ops_use_fp_resources(self, cluster):
        instr = make_instr(0, op=OpClass.FPALU, dest=40)
        cluster.admit(instr)
        assert cluster.free_fp_iq == 3
        assert cluster.free_fp_regs == 3
        assert cluster.free_int_iq == 4

    def test_can_accept_goes_false_when_iq_full(self, cluster):
        for i in range(4):
            cluster.admit(make_instr(i))
        assert not cluster.can_accept(OpClass.IALU, True)
        assert cluster.can_accept(OpClass.FPALU, True)

    def test_can_accept_respects_register_limit(self):
        cluster = Cluster(0, "c0", iq_size=8, regfile_size=2)
        cluster.admit(make_instr(0))
        cluster.admit(make_instr(1))
        assert not cluster.can_accept(OpClass.IALU, True)
        # Destination-less instructions still fit.
        assert cluster.can_accept(OpClass.BRANCH, False)

    def test_admit_raises_when_full(self, cluster):
        for i in range(4):
            cluster.admit(make_instr(i))
        with pytest.raises(RuntimeError):
            cluster.admit(make_instr(5))

    def test_release_register(self, cluster):
        instr = make_instr(0)
        cluster.admit(instr)
        cluster.release_register(instr)
        assert cluster.free_int_regs == 4

    def test_release_never_exceeds_capacity(self, cluster):
        instr = make_instr(0)
        cluster.admit(instr)
        cluster.release_register(instr)
        cluster.release_register(instr)
        assert cluster.free_int_regs == 4

    def test_free_iq_entries_by_op(self, cluster):
        cluster.admit(make_instr(0))
        assert cluster.free_iq_entries(OpClass.IALU) == 3
        assert cluster.free_iq_entries(OpClass.FPALU) == 4

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Cluster(0, "c0", iq_size=0)


class TestSelect:
    def test_oldest_first_within_pool(self, cluster):
        a, b = make_instr(7), make_instr(3)
        cluster.admit(a)
        cluster.admit(b)
        cluster.make_ready(a)
        cluster.make_ready(b)
        selected = cluster.select()
        assert [i.seq for i in selected] == [3]  # one IALU per cycle
        assert cluster.select()[0].seq == 7

    def test_one_per_fu_pool_per_cycle(self, cluster):
        ops = [(0, OpClass.IALU, 1), (1, OpClass.IMUL, 2),
               (2, OpClass.FPALU, 40), (3, OpClass.FPMUL, 41),
               (4, OpClass.IALU, 3)]
        instrs = [make_instr(s, op, d) for s, op, d in ops]
        for i in instrs:
            cluster.admit(i)
            cluster.make_ready(i)
        selected = cluster.select()
        assert len(selected) == 4  # one per pool; second IALU waits
        assert all(i.issued for i in selected)

    def test_select_frees_iq_entry(self, cluster):
        instr = make_instr(0)
        cluster.admit(instr)
        cluster.make_ready(instr)
        cluster.select()
        assert cluster.free_int_iq == 4

    def test_loads_stores_branches_share_ialu(self, cluster):
        for op in (OpClass.LOAD, OpClass.STORE, OpClass.BRANCH):
            assert FU_POOL[op] == "ialu"

    def test_has_ready(self, cluster):
        assert not cluster.has_ready()
        instr = make_instr(0)
        cluster.admit(instr)
        cluster.make_ready(instr)
        assert cluster.has_ready()
        cluster.select()
        assert not cluster.has_ready()

    def test_occupancy(self, cluster):
        cluster.admit(make_instr(0))
        cluster.admit(make_instr(1, op=OpClass.FPALU, dest=40))
        assert cluster.occupancy() == 2


class TestFpClassification:
    def test_fp_ops(self):
        assert uses_fp_resources(OpClass.FPALU)
        assert uses_fp_resources(OpClass.FPMUL)
        for op in (OpClass.IALU, OpClass.IMUL, OpClass.LOAD,
                   OpClass.STORE, OpClass.BRANCH):
            assert not uses_fp_resources(op)
