"""Chaos-path tests: deterministic ServiceFaultSpec scenarios.

The acceptance criteria of the robustness layer, asserted end to end
over real sockets and real (crash-isolated) worker processes:

* injected worker kills and wedges never corrupt the cache and never
  lose a job -- retries converge, manifests stay truthful;
* the admission queue stays bounded under saturation (429 +
  Retry-After, no per-rejection state);
* the circuit breaker trips to cache-only mode and recovers via a
  half-open probe *without a restart*;
* a client disconnecting mid-stream harms nobody;
* a restarted server resumes persisted jobs, re-executing only
  uncached plans.
"""

import socket
import time

import pytest

from repro.harness.runner import ExperimentPlan, ResultCache
from repro.service import (
    Backpressure,
    CircuitBreaker,
    JobStore,
    NULL_SERVICE_FAULTS,
    job_id_for,
)
from repro.core.metrics import BenchmarkRun
from repro.service.jobs import QUEUED, RUNNING, JobRecord


def fake_run(plan):
    return BenchmarkRun(
        benchmark=plan.benchmark, instructions=plan.instructions,
        cycles=plan.instructions * 2, interconnect_dynamic=1.0,
        interconnect_leakage=1.0,
    )


def plan_for(benchmark, model="I", **overrides):
    kwargs = dict(instructions=300, warmup=80)
    kwargs.update(overrides)
    return ExperimentPlan(model, benchmark, **kwargs)


def assert_cache_intact(cache_dir, plans):
    """Every plan's cached result must reload and validate."""
    cache = ResultCache(cache_dir)
    for plan in plans:
        run = cache.load(plan)
        assert run is not None, f"cache missing/corrupt for {plan}"
        assert run.benchmark == plan.benchmark


class TestWorkerKill:
    def test_kill_mid_job_retries_to_clean_completion(
            self, fake_execute, serve, tmp_path):
        """kill-run=1 crashes the first plan's first attempt; the
        runner's retry brings the job home with an empty manifest."""
        live = serve(faults="kill-run=1", max_retries=2)
        client = live.client()
        plans = [plan_for("gzip"), plan_for("mesa")]
        job = client.submit(plans)
        final = client.wait(job["job_id"], timeout=30, poll=0.05)
        assert final["state"] == "done"
        assert final["manifest"] == ""
        assert final["summary"]["executed"] == 2
        assert_cache_intact(tmp_path / "cache", plans)

    def test_kill_without_run_retries_uses_job_budget(
            self, fake_execute, serve, tmp_path):
        """With per-run retries off, the crash escalates to a job-level
        requeue; chaos arms only the first attempt, so attempt 2 is
        clean."""
        live = serve(faults="kill-run=1", max_retries=0,
                     job_retry_budget=1, job_retry_backoff=0.05)
        client = live.client()
        plans = [plan_for("gzip"), plan_for("mesa")]
        job = client.submit(plans)
        final = client.wait(job["job_id"], timeout=30, poll=0.05)
        assert final["state"] == "done"
        assert final["attempts"] == 2
        assert_cache_intact(tmp_path / "cache", plans)
        metrics = client.metrics()
        assert metrics["service.job_retries"] == 1

    def test_exhausted_budgets_land_in_the_manifest(
            self, fake_execute, serve):
        """fail-run raises on *every* attempt: a deterministic bug is
        not retried at the job level and the manifest names it."""
        live = serve(faults="fail-run=1", max_retries=1,
                     job_retry_budget=3)
        client = live.client()
        job = client.submit([plan_for("gzip"), plan_for("mesa")])
        final = client.wait(job["job_id"], timeout=30, poll=0.05)
        assert final["state"] == "failed"
        assert final["attempts"] == 1  # deterministic -> no requeue
        assert "gzip" in final["manifest"]
        report = client.report(job["job_id"])
        (failure,) = report["failures"]
        assert failure["reason"] == "error"
        assert "injected deterministic failure" in failure["detail"]
        # The healthy plan still completed and is served.
        assert len(report["results"]) == 1

    def test_wedged_worker_is_timed_out_and_retried(
            self, fake_execute, serve, tmp_path):
        live = serve(faults="wedge-run=1", run_timeout=1.0,
                     max_retries=1)
        client = live.client()
        plans = [plan_for("gzip")]
        job = client.submit(plans)
        final = client.wait(job["job_id"], timeout=30, poll=0.05)
        assert final["state"] == "done"
        assert_cache_intact(tmp_path / "cache", plans)


class TestQueueSaturation:
    def test_saturation_is_rejected_and_bounded(self, fake_execute,
                                                serve):
        """Past capacity the server answers 429 + Retry-After and
        keeps NO per-rejection state: job map, job store and queue
        depth stay flat no matter how hard a client hammers."""
        live = serve(queue_capacity=2, faults="stall-dispatch=5.0")
        client = live.client()
        admitted = [client.submit([plan_for("gzip")])]
        deadline = time.monotonic() + 5.0
        benchmarks = iter(("mesa", "art", "bzip2"))
        while len(admitted) < 3 and time.monotonic() < deadline:
            try:
                admitted.append(
                    client.submit([plan_for(next(benchmarks))]))
            except Backpressure:
                time.sleep(0.05)
        assert len(admitted) == 3  # 1 dispatched + 2 queued

        jobs_before = live.service.store.directory
        stored_before = len(list(jobs_before.glob("*.json")))
        rejections = 0
        for n in range(50):
            with pytest.raises(Backpressure) as excinfo:
                client.submit([plan_for("gcc", seed=n)])
            assert excinfo.value.retry_after >= 1
            rejections += 1
        assert rejections == 50
        health = client.health()
        assert health["queue_depth"] <= 2
        assert health["jobs"] == 3  # no record created per rejection
        stored_after = len(list(jobs_before.glob("*.json")))
        assert stored_after == stored_before
        assert live.service.queue.rejected >= 50

    def test_rejected_client_honouring_retry_after_gets_in(
            self, fake_execute, serve):
        live = serve(queue_capacity=1, faults="stall-dispatch=0.3")
        client = live.client()
        client.submit([plan_for("gzip")])
        final = client.submit_and_wait([plan_for("mesa")],
                                       timeout=30,
                                       max_submit_attempts=10)
        assert final["state"] == "done"


class TestCircuitBreaker:
    def test_trips_to_cache_only_and_recovers_without_restart(
            self, fake_execute, serve, tmp_path):
        breaker = CircuitBreaker(window=4, threshold=0.5,
                                 min_samples=2, cooldown=0.5)
        live = serve(faults="kill-run=1,2", max_retries=0,
                     job_retry_budget=0, breaker=breaker)
        client = live.client()

        # Phase 1: both plans crash; the breaker trips OPEN.
        crashing = client.submit([plan_for("gzip"), plan_for("mesa")])
        final = client.wait(crashing["job_id"], timeout=30, poll=0.05)
        assert final["state"] == "failed"
        assert client.health()["breaker"] == "open"
        ready, _ = client.ready()
        assert not ready

        # Phase 2: degraded mode -- no workers launch; cache misses
        # land in the manifest as breaker-open, instantly.
        degraded = client.submit([plan_for("art")])
        final = client.wait(degraded["job_id"], timeout=30, poll=0.05)
        assert final["state"] == "failed"
        assert final["attempts"] == 0  # nothing executed
        report = client.report(degraded["job_id"])
        (failure,) = report["failures"]
        assert failure["reason"] == "breaker-open"

        # Phase 3: after the cooldown a clean probe closes the breaker
        # -- same process, no restart.  Chaos is disarmed first so the
        # probe can succeed.
        live.service.faults = NULL_SERVICE_FAULTS
        time.sleep(0.6)
        probe = client.submit([plan_for("bzip2")])
        final = client.wait(probe["job_id"], timeout=30, poll=0.05)
        assert final["state"] == "done"
        assert client.health()["breaker"] == "closed"
        assert live.service.breaker.transitions == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
        metrics = client.metrics()
        assert metrics["service.breaker_opens"] == 1


class TestConnectionFaults:
    def test_client_disconnect_mid_stream_harms_nobody(
            self, fake_execute, serve):
        live = serve(faults="stall-dispatch=0.5")
        client = live.client()
        job = client.submit([plan_for("gzip")])
        with socket.create_connection(("127.0.0.1", live.port),
                                      timeout=5) as sock:
            sock.sendall(f"GET /jobs/{job['job_id']}/stream "
                         f"HTTP/1.1\r\n\r\n".encode())
            sock.recv(256)  # read a little, then vanish mid-stream
        final = client.wait(job["job_id"], timeout=30, poll=0.05)
        assert final["state"] == "done"
        assert client.health()["ok"] is True

    def test_injected_connection_drop_then_recovery(self, fake_execute,
                                                    serve):
        live = serve(faults="drop-conn=1")
        client = live.client()
        with pytest.raises((ConnectionError, OSError)):
            client.health()
        health = client.health()  # connection 2 is served normally
        assert health["ok"] is True
        assert health["dropped_conns"] == 1


class TestRestartResume:
    def test_resumes_persisted_job_executing_only_misses(
            self, fake_execute, serve, tmp_path):
        """A QUEUED record left behind by a dead server is picked up
        on start; plans already in the cache are not re-executed."""
        cache_dir = tmp_path / "cache"
        plans = (plan_for("gzip"), plan_for("mesa"))
        ResultCache(cache_dir).store(plans[0], fake_run(plans[0]),
                                     duration=0.01)
        record = JobRecord(job_id=job_id_for(plans), plans=plans,
                           state=QUEUED)
        JobStore(cache_dir / "jobs").save(record)

        live = serve(cache_dir=cache_dir)
        final = live.client().wait(record.job_id, timeout=30,
                                   poll=0.05)
        assert final["state"] == "done"
        assert final["summary"]["cache_hits"] == 1
        assert final["summary"]["executed"] == 1
        assert_cache_intact(cache_dir, plans)

    def test_running_records_resume_too(self, fake_execute, serve,
                                        tmp_path):
        """A record that died mid-RUNNING (no report written) must be
        re-queued, not stranded."""
        cache_dir = tmp_path / "cache"
        plans = (plan_for("art"),)
        record = JobRecord(job_id=job_id_for(plans), plans=plans,
                           state=RUNNING, attempts=1)
        JobStore(cache_dir / "jobs").save(record)

        live = serve(cache_dir=cache_dir)
        final = live.client().wait(record.job_id, timeout=30,
                                   poll=0.05)
        assert final["state"] == "done"

    def test_graceful_stop_persists_interrupted_job_as_queued(
            self, fake_execute, serve, tmp_path, monkeypatch):
        """Stopping the server mid-job parks the record as QUEUED on
        disk; a successor service finishes it from the cache."""
        import repro.harness.runner as runner_mod

        original = runner_mod._execute_plan

        def slow_execute(plan, interconnect_model=None):
            time.sleep(3.0)
            return original(plan, interconnect_model)

        monkeypatch.setattr(runner_mod, "_execute_plan", slow_execute)
        cache_dir = tmp_path / "cache"
        live = serve(cache_dir=cache_dir, run_timeout=30.0)
        client = live.client()
        job = client.submit([plan_for("gzip")])
        deadline = time.monotonic() + 5.0
        while (client.job(job["job_id"])["state"] != "running"
               and time.monotonic() < deadline):
            time.sleep(0.05)
        live.stop()

        stored = JobStore(cache_dir / "jobs").load(job["job_id"])
        assert stored is not None
        assert stored.state == QUEUED  # parked, not failed/cancelled

        monkeypatch.setattr(runner_mod, "_execute_plan", original)
        successor = serve(cache_dir=cache_dir)
        final = successor.client().wait(job["job_id"], timeout=30,
                                        poll=0.05)
        assert final["state"] == "done"
