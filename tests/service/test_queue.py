"""AdmissionQueue: bounds, priorities, backpressure hints."""

import asyncio

import pytest

from repro.service import AdmissionQueue, QueueFullError


def drain(queue, count):
    async def take():
        return [await queue.get() for _ in range(count)]

    return asyncio.run(take())


class TestOrdering:
    def test_fifo_within_a_priority(self):
        queue = AdmissionQueue(capacity=8)
        for item in ("a", "b", "c"):
            queue.put(item)
        assert drain(queue, 3) == ["a", "b", "c"]

    def test_higher_priority_dequeues_first(self):
        queue = AdmissionQueue(capacity=8)
        queue.put("low", priority=0)
        queue.put("high", priority=5)
        queue.put("mid", priority=2)
        assert drain(queue, 3) == ["high", "mid", "low"]

    def test_get_waits_for_a_put(self):
        queue = AdmissionQueue(capacity=2)

        async def scenario():
            getter = asyncio.ensure_future(queue.get())
            await asyncio.sleep(0.01)
            assert not getter.done()
            queue.put("late")
            return await asyncio.wait_for(getter, timeout=2)

        assert asyncio.run(scenario()) == "late"


class TestBackpressure:
    def test_rejects_at_capacity_before_storing(self):
        queue = AdmissionQueue(capacity=2)
        queue.put("a")
        queue.put("b")
        with pytest.raises(QueueFullError) as excinfo:
            queue.put("c")
        assert queue.depth == 2
        assert queue.rejected == 1
        assert excinfo.value.capacity == 2
        assert excinfo.value.retry_after >= 1

    def test_sustained_rejection_is_bounded(self):
        queue = AdmissionQueue(capacity=1)
        queue.put("only")
        for n in range(100):
            with pytest.raises(QueueFullError):
                queue.put(f"extra-{n}")
        assert queue.depth == 1
        assert queue.rejected == 100

    def test_retry_after_scales_with_service_time(self):
        queue = AdmissionQueue(capacity=4, drain_hint=1.0)
        baseline = queue.retry_after()
        for _ in range(10):
            queue.observe_service_time(30.0)
        assert queue.retry_after() > baseline
        assert queue.retry_after() <= 120

    def test_force_bypasses_capacity(self):
        queue = AdmissionQueue(capacity=1)
        queue.put("a")
        queue.put("resumed", force=True)
        assert queue.depth == 2
        assert drain(queue, 2) == ["a", "resumed"]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=1, drain_hint=0)


class TestRemove:
    def test_remove_withdraws_a_queued_item(self):
        queue = AdmissionQueue(capacity=4)
        for item in ("a", "b", "c"):
            queue.put(item)
        assert queue.remove("b")
        assert not queue.remove("b")
        assert queue.depth == 2
        assert drain(queue, 2) == ["a", "c"]

    def test_remove_missing_is_false(self):
        queue = AdmissionQueue(capacity=2)
        assert not queue.remove("ghost")
