"""CircuitBreaker: trip, cool down, probe, recover -- on a fake clock."""

import pytest

from repro.service import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("window", 8)
    kwargs.setdefault("threshold", 0.5)
    kwargs.setdefault("min_samples", 4)
    kwargs.setdefault("cooldown", 30.0)
    return CircuitBreaker(clock=clock, **kwargs), clock


class TestTripping:
    def test_starts_closed_and_allows_execution(self):
        breaker, _clock = make_breaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow_execution()
        assert breaker.crash_rate() == 0.0

    def test_trips_open_at_threshold(self):
        breaker, _clock = make_breaker()
        for crashed in (True, True, False, True):
            breaker.record(crashed)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow_execution()
        assert breaker.transitions == [("closed", "open")]

    def test_min_samples_guards_early_crashes(self):
        """One crash in a cold window must not trip the breaker."""
        breaker, _clock = make_breaker(min_samples=4)
        breaker.record(True)
        breaker.record(True)
        assert breaker.state is BreakerState.CLOSED

    def test_window_slides(self):
        """Old crashes age out of the fixed-size window."""
        breaker, _clock = make_breaker(window=4, min_samples=4)
        breaker.record(True)
        for _ in range(4):
            breaker.record(False)
        assert breaker.crash_rate() == 0.0
        assert breaker.state is BreakerState.CLOSED


class TestRecovery:
    def test_half_open_after_cooldown(self):
        breaker, clock = make_breaker(min_samples=2, cooldown=30.0)
        breaker.record(True)
        breaker.record(True)
        assert breaker.state is BreakerState.OPEN
        clock.advance(29.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = make_breaker(min_samples=2)
        breaker.record(True)
        breaker.record(True)
        clock.advance(31.0)
        assert breaker.allow_execution()
        assert not breaker.allow_execution()
        assert not breaker.allow_execution()

    def test_clean_probe_closes_and_clears_window(self):
        breaker, clock = make_breaker(min_samples=2)
        breaker.record(True)
        breaker.record(True)
        clock.advance(31.0)
        assert breaker.allow_execution()
        breaker.record(False)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.crash_rate() == 0.0
        assert breaker.transitions == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_crashing_probe_reopens_for_another_cooldown(self):
        breaker, clock = make_breaker(min_samples=2)
        breaker.record(True)
        breaker.record(True)
        clock.advance(31.0)
        assert breaker.allow_execution()
        breaker.record(True)
        assert breaker.state is BreakerState.OPEN
        clock.advance(29.0)
        assert breaker.state is BreakerState.OPEN
        clock.advance(2.0)
        assert breaker.state is BreakerState.HALF_OPEN


class TestCallbacksAndValidation:
    def test_on_transition_fires_with_states_and_rate(self):
        seen = []
        clock = FakeClock()
        breaker = CircuitBreaker(
            window=4, threshold=0.5, min_samples=2, cooldown=10.0,
            clock=clock,
            on_transition=lambda old, new, rate: seen.append(
                (old.value, new.value, rate)),
        )
        breaker.record(True)
        breaker.record(True)
        assert seen == [("closed", "open", 1.0)]

    @pytest.mark.parametrize("kwargs", [
        dict(window=0),
        dict(threshold=0.0),
        dict(threshold=1.5),
        dict(min_samples=0),
        dict(min_samples=30),
        dict(cooldown=0),
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            make_breaker(**kwargs)
