"""Fixtures for the sweep-service suite.

The heavy pieces are shared here: a scriptable instant simulator (so
jobs finish in milliseconds) and :class:`ServiceThread`, which runs a
real :class:`SweepService` -- real sockets, real worker processes --
on a background event loop with deterministic startup/shutdown.
"""

import asyncio
import threading

import pytest

from repro.core.metrics import BenchmarkRun
from repro.harness.runner import ExperimentPlan
from repro.service import ServiceClient, SweepService

WINDOW = dict(instructions=300, warmup=80)


def fake_run(plan):
    return BenchmarkRun(
        benchmark=plan.benchmark, instructions=plan.instructions,
        cycles=plan.instructions * 2, interconnect_dynamic=1.0,
        interconnect_leakage=1.0,
    )


def plan_for(benchmark, model="I", **overrides):
    kwargs = dict(WINDOW)
    kwargs.update(overrides)
    return ExperimentPlan(model, benchmark, **kwargs)


@pytest.fixture
def fake_execute(monkeypatch):
    """Replace the simulator with an instant stand-in.

    Installed *before* the service starts, so the chaos wrapper (if
    any) chains to this fake and marker-file faults still fire.
    """

    def execute(plan, interconnect_model=None):
        return fake_run(plan), 0.01

    monkeypatch.setattr("repro.harness.runner._execute_plan", execute)
    return execute


class ServiceThread:
    """A live service on a daemon thread; stop() is deterministic."""

    def __init__(self, service: SweepService) -> None:
        self.service = service
        self._started = threading.Event()
        self._loop = None
        self._stopper = None
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self) -> None:
        async def main():
            await self.service.start()
            self._loop = asyncio.get_running_loop()
            self._stopper = asyncio.Event()
            self._started.set()
            await self._stopper.wait()
            await self.service.stop()

        asyncio.run(main())

    def start(self) -> "ServiceThread":
        self._thread.start()
        assert self._started.wait(10), "service failed to start"
        return self

    def stop(self, timeout: float = 20.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stopper.set)
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "service failed to stop"

    @property
    def port(self) -> int:
        return self.service.port

    def client(self, **kwargs) -> ServiceClient:
        kwargs.setdefault("timeout", 10.0)
        return ServiceClient(port=self.port, **kwargs)


@pytest.fixture
def serve(tmp_path):
    """Factory: boot a service (ephemeral port) and register cleanup.

    Usage: ``live = serve(queue_capacity=2, ...)``; returns the
    started :class:`ServiceThread`.  Every service gets its own cache
    directory under ``tmp_path`` unless one is passed explicitly.
    """
    threads = []

    def boot(**kwargs):
        kwargs.setdefault("cache_dir", tmp_path / "cache")
        kwargs.setdefault("port", 0)
        kwargs.setdefault("run_timeout", 15.0)
        kwargs.setdefault("verbose", False)
        live = ServiceThread(SweepService(**kwargs)).start()
        threads.append(live)
        return live

    yield boot
    for live in threads:
        live.stop()
