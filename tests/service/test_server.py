"""SweepService end to end: real sockets, real worker processes."""

import json
import socket
import time

import pytest

from repro.harness.runner import ExperimentPlan
from repro.service import Backpressure, ServiceError


def plan_for(benchmark, model="I", **overrides):
    kwargs = dict(instructions=300, warmup=80)
    kwargs.update(overrides)
    return ExperimentPlan(model, benchmark, **kwargs)


def submit_when_dispatched(client, plans, timeout=5.0, **kwargs):
    """Submit once the dispatcher has drained the previous job off the
    queue (capacity-1 tests would otherwise race admission)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return client.submit(plans, **kwargs)
        except Backpressure:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


class TestSubmitAndComplete:
    def test_submit_runs_to_done(self, fake_execute, serve):
        live = serve()
        client = live.client()
        job = client.submit([plan_for("gzip"), plan_for("mesa")])
        assert job["state"] in ("queued", "running")
        final = client.wait(job["job_id"], timeout=20, poll=0.05)
        assert final["state"] == "done"
        assert final["summary"]["executed"] == 2
        assert final["summary"]["failed"] == 0
        assert final["manifest"] == ""

    def test_report_has_schema_and_results(self, fake_execute, serve):
        live = serve()
        client = live.client()
        job = client.submit([plan_for("gzip")])
        client.wait(job["job_id"], timeout=20, poll=0.05)
        report = client.report(job["job_id"])
        assert report["schema_version"] == 1
        assert len(report["results"]) == 1
        assert report["failures"] == []

    def test_resubmission_deduplicates(self, fake_execute, serve):
        live = serve()
        client = live.client()
        plans = [plan_for("gzip"), plan_for("mesa")]
        first = client.submit(plans)
        client.wait(first["job_id"], timeout=20, poll=0.05)
        again = client.submit(list(reversed(plans)))  # order-insensitive
        assert again["job_id"] == first["job_id"]
        assert again["state"] == "done"
        # The dedup answered from the finished job: nothing re-ran.
        assert again["summary"]["executed"] == 2

    def test_second_identical_batch_is_all_cache_hits(
            self, fake_execute, serve, tmp_path):
        """Restart-equivalent flow: a fresh service over the same
        cache serves a known batch without executing anything."""
        import shutil

        plans = [plan_for("gzip"), plan_for("mesa")]
        first = serve(cache_dir=tmp_path / "shared")
        done = first.client().submit(plans)
        first.client().wait(done["job_id"], timeout=20, poll=0.05)
        first.stop()

        # Forget the job records but keep the result cache: the next
        # service must rebuild the job from scratch yet execute nothing.
        shutil.rmtree(tmp_path / "shared" / "jobs")
        second = serve(cache_dir=tmp_path / "shared")
        job = second.client().submit(plans)
        final = second.client().wait(job["job_id"], timeout=20,
                                     poll=0.05)
        assert final["state"] == "done"
        assert final["summary"]["executed"] == 0
        assert final["summary"]["cache_hits"] == 2


class TestValidation:
    def test_unknown_model_is_400(self, fake_execute, serve):
        client = serve().client()
        with pytest.raises(ServiceError) as excinfo:
            client.submit([plan_for("gzip", model="Z")])
        assert excinfo.value.status == 400
        assert "unknown model" in excinfo.value.message

    def test_design_point_model_is_accepted(self, fake_execute, serve):
        client = serve().client()
        job = client.submit(
            [plan_for("gzip", model="dp@n32:B144+L36:cw2")]
        )
        assert job["state"] in ("queued", "running", "done")

    def test_malformed_design_point_is_400(self, fake_execute, serve):
        client = serve().client()
        with pytest.raises(ServiceError) as excinfo:
            client.submit([plan_for("gzip", model="dp@n32:Q9:cw2")])
        assert excinfo.value.status == 400

    def test_unsupported_node_design_point_is_400(self, fake_execute,
                                                  serve):
        client = serve().client()
        with pytest.raises(ServiceError) as excinfo:
            client.submit([plan_for("gzip", model="dp@n90:B144:cw2")])
        assert excinfo.value.status == 400

    def test_unknown_benchmark_is_400(self, fake_execute, serve):
        client = serve().client()
        with pytest.raises(ServiceError) as excinfo:
            client.submit([plan_for("not-a-benchmark")])
        assert excinfo.value.status == 400

    def test_malformed_body_is_400_not_a_crash(self, fake_execute,
                                               serve):
        live = serve()
        with socket.create_connection(("127.0.0.1", live.port),
                                      timeout=5) as sock:
            sock.sendall(b"POST /jobs HTTP/1.1\r\n"
                         b"Content-Length: 9\r\n\r\nnot json!")
            response = sock.recv(65536).decode()
        assert "400" in response.splitlines()[0]
        # The server survived: health still answers.
        assert live.client().health()["ok"] is True

    def test_unknown_job_is_404(self, fake_execute, serve):
        client = serve().client()
        with pytest.raises(ServiceError) as excinfo:
            client.job("doesnotexist")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404_and_bad_method_405(self, fake_execute,
                                                     serve):
        client = serve().client()
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("PUT", "/jobs/abc123/report")
        assert excinfo.value.status in (404, 405)

    def test_report_before_completion_is_409(self, fake_execute, serve):
        live = serve(faults="stall-dispatch=0.5")
        client = live.client()
        job = client.submit([plan_for("gzip")])
        with pytest.raises(ServiceError) as excinfo:
            client.report(job["job_id"])
        assert excinfo.value.status == 409

    def test_oversized_body_is_413(self, fake_execute, serve):
        live = serve()
        with socket.create_connection(("127.0.0.1", live.port),
                                      timeout=5) as sock:
            sock.sendall(b"POST /jobs HTTP/1.1\r\n"
                         b"Content-Length: 999999999\r\n\r\n")
            response = sock.recv(65536).decode()
        assert "413" in response.splitlines()[0]


class TestHealthAndMetrics:
    def test_healthz_always_answers(self, fake_execute, serve):
        health = serve().client().health()
        assert health["ok"] is True
        assert health["breaker"] == "closed"
        assert health["queue_capacity"] == 16

    def test_readyz_reflects_saturation(self, fake_execute, serve):
        live = serve(queue_capacity=1, faults="stall-dispatch=1.0")
        client = live.client()
        ready, _ = client.ready()
        assert ready
        client.submit([plan_for("gzip")])
        # Queued behind the stalled dispatcher; retried in case the
        # first job has not been dequeued yet.
        submit_when_dispatched(client, [plan_for("mesa")])
        ready, payload = client.ready()
        assert not ready

    def test_metrics_snapshot_counts_jobs(self, fake_execute, serve):
        live = serve()
        client = live.client()
        job = client.submit([plan_for("gzip")])
        client.wait(job["job_id"], timeout=20, poll=0.05)
        snapshot = client.metrics()
        assert snapshot["service.jobs_admitted"] == 1
        assert snapshot["service.jobs_completed"] == 1


class TestCancellation:
    def test_cancel_queued_job(self, fake_execute, serve):
        live = serve(faults="stall-dispatch=1.0")
        client = live.client()
        blocker = client.submit([plan_for("gzip")])
        victim = submit_when_dispatched(client, [plan_for("mesa")])
        cancelled = client.cancel(victim["job_id"])
        assert cancelled["state"] in ("cancelled", "queued")
        final = client.wait(victim["job_id"], timeout=20, poll=0.05)
        assert final["state"] == "cancelled"
        # The blocker is unaffected.
        assert client.wait(blocker["job_id"], timeout=20,
                           poll=0.05)["state"] == "done"

    def test_cancel_terminal_job_is_idempotent(self, fake_execute,
                                               serve):
        client = serve().client()
        job = client.submit([plan_for("gzip")])
        client.wait(job["job_id"], timeout=20, poll=0.05)
        after = client.cancel(job["job_id"])
        assert after["state"] == "done"


class TestStreaming:
    def test_stream_yields_jsonl_until_terminal(self, fake_execute,
                                                serve):
        live = serve()
        client = live.client()
        job = client.submit([plan_for("gzip"), plan_for("mesa")])
        with socket.create_connection(("127.0.0.1", live.port),
                                      timeout=10) as sock:
            sock.sendall(f"GET /jobs/{job['job_id']}/stream "
                         f"HTTP/1.1\r\n\r\n".encode())
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw = raw + chunk
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"200 OK" in head
        lines = [json.loads(line) for line in body.splitlines() if line]
        assert lines, "stream produced no snapshots"
        assert lines[-1]["state"] == "done"


class TestBackpressureHTTP:
    def test_429_carries_retry_after_header(self, fake_execute, serve):
        live = serve(queue_capacity=1, faults="stall-dispatch=2.0")
        client = live.client()
        client.submit([plan_for("gzip")])
        submit_when_dispatched(client, [plan_for("mesa")])
        with pytest.raises(Backpressure) as excinfo:
            client.submit([plan_for("art")])
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after >= 1
