"""JobRecord / JobStore: idempotent ids, durable round-trips."""

import json

import pytest

from repro.harness.runner import ExperimentPlan
from repro.service import JOB_SCHEMA_VERSION, JobRecord, JobStore, job_id_for
from repro.service.jobs import DONE, QUEUED, RUNNING


def plan_for(benchmark, model="I", **overrides):
    kwargs = dict(instructions=300, warmup=80)
    kwargs.update(overrides)
    return ExperimentPlan(model, benchmark, **kwargs)


def make_record(*benchmarks, **kwargs):
    plans = tuple(plan_for(b) for b in (benchmarks or ("gzip",)))
    kwargs.setdefault("job_id", job_id_for(plans))
    return JobRecord(plans=plans, **kwargs)


class TestJobIdentity:
    def test_id_is_order_insensitive(self):
        a = (plan_for("gzip"), plan_for("mesa"))
        b = (plan_for("mesa"), plan_for("gzip"))
        assert job_id_for(a) == job_id_for(b)

    def test_id_tracks_plan_content(self):
        assert job_id_for((plan_for("gzip"),)) != \
            job_id_for((plan_for("gzip", seed=7),))

    def test_priority_is_not_identity(self):
        plans = (plan_for("gzip"),)
        low = JobRecord(job_id=job_id_for(plans), plans=plans, priority=0)
        high = JobRecord(job_id=job_id_for(plans), plans=plans, priority=9)
        assert low.job_id == high.job_id


class TestRecordRoundTrip:
    def test_round_trips_through_json(self):
        record = make_record("gzip", "mesa", priority=3,
                             retry_budget=2, attempts=1, state=RUNNING)
        clone = JobRecord.from_json(
            json.loads(json.dumps(record.to_json())))
        assert clone == record

    def test_version_mismatch_rejected(self):
        data = make_record().to_json()
        data["schema_version"] = JOB_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            JobRecord.from_json(data)

    def test_tampered_plans_are_refused(self):
        """A record whose plans no longer hash to its id must not
        resume: silently running different plans under an old job id
        would poison the dedup map."""
        data = make_record("gzip").to_json()
        data["plans"][0]["seed"] = 999
        with pytest.raises(ValueError, match="tampered"):
            JobRecord.from_json(data)

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("plans"),
        lambda d: d.update(plans=[]),
        lambda d: d.update(job_id=""),
        lambda d: d.update(report="not-a-dict"),
        lambda d: d.update(state="exploded"),
    ])
    def test_malformed_records_are_refused(self, mutate):
        data = make_record().to_json()
        mutate(data)
        with pytest.raises(ValueError):
            JobRecord.from_json(data)

    def test_public_json_carries_summary_not_plans(self):
        record = make_record("gzip", state=DONE)
        record.report = {"summary": {"executed": 1}}
        public = record.public_json()
        assert public["summary"] == {"executed": 1}
        assert public["plans"] == 1  # a count, not the plan bodies


class TestJobStore:
    def test_save_load_round_trip(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        record = make_record("gzip", "mesa", state=QUEUED)
        store.save(record)
        assert store.load(record.job_id) == record

    def test_missing_and_corrupt_load_as_none(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        assert store.load("nope") is None
        store.directory.mkdir(parents=True)
        (store.directory / "bad.json").write_text("{not json")
        assert store.load("bad") is None

    def test_scan_skips_corrupt_and_sorts(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        records = [make_record("gzip"), make_record("mesa"),
                   make_record("art", state=DONE)]
        for record in records:
            store.save(record)
        (store.directory / "junk.json").write_text("[]")
        scanned = store.scan()
        assert sorted(r.job_id for r in scanned) == \
            sorted(r.job_id for r in records)

    def test_resumable_excludes_terminal_states(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        store.save(make_record("gzip", state=QUEUED))
        store.save(make_record("mesa", state=RUNNING))
        store.save(make_record("art", state=DONE))
        states = sorted(r.state for r in store.resumable())
        assert states == [QUEUED, RUNNING]

    def test_validation_at_construction(self):
        with pytest.raises(ValueError):
            JobRecord(job_id="x", plans=())
        with pytest.raises(ValueError):
            make_record(retry_budget=-1)
