"""ServiceFaultSpec: parse/canonical round-trips and validation."""

import pytest

from repro.service import (
    NULL_SERVICE_FAULTS,
    ServiceFaultSpec,
    ServiceFaultSpecError,
)


class TestParse:
    def test_full_spec_round_trips(self):
        text = ("kill-run=1,2;wedge-run=3;fail-run=4;"
                "stall-dispatch=0.5;drop-conn=2")
        spec = ServiceFaultSpec.parse(text)
        assert spec.kill_runs == (1, 2)
        assert spec.wedge_runs == (3,)
        assert spec.fail_runs == (4,)
        assert spec.stall_dispatch == 0.5
        assert spec.drop_conns == (2,)
        assert spec.canonical() == text
        assert ServiceFaultSpec.parse(spec.canonical()) == spec

    def test_indices_are_sorted_and_deduped(self):
        spec = ServiceFaultSpec.parse("kill-run=3,1,3")
        assert spec.kill_runs == (1, 3)
        assert spec.canonical() == "kill-run=1,3"

    def test_empty_and_whitespace_specs_are_null(self):
        assert ServiceFaultSpec.parse("").is_null
        assert ServiceFaultSpec.parse(" ; ; ").is_null
        assert NULL_SERVICE_FAULTS.is_null
        assert NULL_SERVICE_FAULTS.canonical() == ""

    def test_specs_are_hashable_and_comparable(self):
        a = ServiceFaultSpec.parse("kill-run=1")
        b = ServiceFaultSpec(kill_runs=(1,))
        assert a == b
        assert len({a, b}) == 1


class TestValidation:
    @pytest.mark.parametrize("text", [
        "kill-run=0",
        "kill-run=-2",
        "wedge-run=x",
        "stall-dispatch=soon",
        "stall-dispatch=-1",
        "kill-run",
        "kill-run=",
        "explode=1",
    ])
    def test_malformed_clauses_raise(self, text):
        with pytest.raises(ServiceFaultSpecError):
            ServiceFaultSpec.parse(text)

    def test_overlapping_modes_raise(self):
        with pytest.raises(ServiceFaultSpecError,
                           match="more than one"):
            ServiceFaultSpec.parse("kill-run=2;fail-run=2")
        with pytest.raises(ServiceFaultSpecError):
            ServiceFaultSpec(kill_runs=(1,), wedge_runs=(1,))

    def test_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            ServiceFaultSpec.parse("kill-run=0")
