"""Tests for narrow-operand detection and the width predictor."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.operands.narrow import (
    NarrowWidthPredictor,
    count_leading_zeros,
    fits_narrow,
)


class TestDetection:
    def test_fits_narrow_range(self):
        assert fits_narrow(0)
        assert fits_narrow(1023)
        assert not fits_narrow(1024)
        assert not fits_narrow(-5)

    def test_count_leading_zeros(self):
        assert count_leading_zeros(0) == 64
        assert count_leading_zeros(1) == 63
        assert count_leading_zeros(1023) == 54
        assert count_leading_zeros((1 << 64) - 1) == 0

    def test_clz_rejects_invalid(self):
        with pytest.raises(ValueError):
            count_leading_zeros(-1)
        with pytest.raises(ValueError):
            count_leading_zeros(1 << 64)

    @given(value=st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_clz_consistent_with_narrow(self, value):
        """A value is narrow iff it has at least 54 leading zeros."""
        assert fits_narrow(value) == (count_leading_zeros(value) >= 54)


class TestPredictor:
    def test_predicts_only_when_saturated(self):
        """The paper: predict narrow when the 2-bit counter equals three."""
        p = NarrowWidthPredictor(64)
        pc = 0x400000
        assert not p.predict(pc)
        p.observe(pc, True)
        p.observe(pc, True)
        assert not p.predict(pc)  # counter at 2, not saturated
        p.observe(pc, True)
        assert p.predict(pc)

    def test_wide_result_decays(self):
        p = NarrowWidthPredictor(64)
        pc = 0x400000
        for _ in range(3):
            p.observe(pc, True)
        p.observe(pc, False)
        assert not p.predict(pc)

    def test_paper_accuracy_on_consistent_stream(self):
        """A stream where narrow-producing PCs are 97% consistent should
        reach roughly the paper's 95% coverage / 2% false rate."""
        p = NarrowWidthPredictor(8192)
        rng = random.Random(7)
        pcs = [0x400000 + 4 * i for i in range(200)]
        narrow_pcs = set(pcs[:40])
        for _ in range(20000):
            pc = rng.choice(pcs)
            if pc in narrow_pcs:
                narrow = rng.random() < 0.97
            else:
                narrow = rng.random() < 0.02
            p.predict_and_train(pc, narrow)
        assert p.coverage > 0.85
        assert p.false_narrow_rate < 0.08

    def test_stats_on_empty(self):
        p = NarrowWidthPredictor()
        assert p.coverage == 0.0
        assert p.false_narrow_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NarrowWidthPredictor(100)
        with pytest.raises(ValueError):
            NarrowWidthPredictor(64, predict_at=4)

    @given(outcomes=st.lists(st.booleans(), max_size=50))
    def test_counter_stays_in_bounds(self, outcomes):
        p = NarrowWidthPredictor(16)
        for narrow in outcomes:
            p.predict_and_train(0x400000, narrow)
        assert 0 <= p._table[p._index(0x400000)] <= 3
