"""Tests for the frequent-value compaction extension."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.operands.frequent import FrequentValueTable, frequent_value_coverage


class TestFrequentValueTable:
    def test_learns_a_hot_value(self):
        table = FrequentValueTable(capacity=2, tracked=8)
        for _ in range(20):
            table.observe(0xDEAD)
        table.observe(1)
        assert table.contains(0xDEAD)
        assert table.encode(0xDEAD) == 0

    def test_encode_miss_returns_none(self):
        table = FrequentValueTable()
        table.observe(5)
        assert table.encode(999) is None

    def test_capacity_bounds_encodable_set(self):
        table = FrequentValueTable(capacity=2, tracked=16)
        for value, count in ((1, 10), (2, 8), (3, 5)):
            for _ in range(count):
                table.observe(value)
        assert table.top_values() == [1, 2]
        assert not table.contains(3)

    def test_space_saving_eviction_promotes_new_hot_values(self):
        """A value that becomes hot later must displace stale entries."""
        table = FrequentValueTable(capacity=4, tracked=8)
        for v in range(8):
            table.observe(v)
        for _ in range(50):
            table.observe(100)
        assert table.contains(100)

    def test_index_bits(self):
        assert FrequentValueTable(capacity=8).index_bits() == 3
        assert FrequentValueTable(capacity=2).index_bits() == 1
        # Tag (8) + index must fit the 18-bit L-Wire plane.
        assert 8 + FrequentValueTable(capacity=8).index_bits() <= 18

    def test_hit_rate_tracking(self):
        table = FrequentValueTable(capacity=1, tracked=4)
        for _ in range(10):
            table.observe(7)
        table.encode(7)
        table.encode(8)
        assert table.encodable_hits == 1
        assert 0 < table.hit_rate <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequentValueTable(capacity=0)
        with pytest.raises(ValueError):
            FrequentValueTable(capacity=8, tracked=4)

    def test_determinism_for_replication(self):
        """Identical observation streams must give identical tables --
        the property that lets every cluster keep a coherent replica."""
        rng = random.Random(3)
        stream = [rng.randrange(50) for _ in range(2000)]
        a, b = FrequentValueTable(), FrequentValueTable()
        for v in stream:
            a.observe(v)
            b.observe(v)
        assert a.top_values() == b.top_values()

    @given(stream=st.lists(st.integers(min_value=0, max_value=20),
                           max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_tracked_set_bounded(self, stream):
        table = FrequentValueTable(capacity=4, tracked=8)
        for v in stream:
            table.observe(v)
        assert len(table._counts) <= 8
        assert len(table.top_values()) <= 4


class TestOfflineCoverage:
    def test_skewed_stream_high_coverage(self):
        """A Zipf-ish stream reproduces Yang et al.'s ~50% top-8 share."""
        rng = random.Random(11)
        hot = list(range(8))
        stream = []
        for _ in range(5000):
            if rng.random() < 0.55:
                stream.append(rng.choice(hot))
            else:
                stream.append(rng.randrange(10_000))
        assert frequent_value_coverage(stream, capacity=8) > 0.45

    def test_uniform_stream_low_coverage(self):
        rng = random.Random(12)
        stream = [rng.randrange(10_000) for _ in range(5000)]
        assert frequent_value_coverage(stream, capacity=8) < 0.1

    def test_empty_stream(self):
        assert frequent_value_coverage([], capacity=8) == 0.0

    def test_generated_workloads_show_value_locality(self):
        """The synthetic SPEC2k-like streams carry the frequent-value
        locality the extension exploits."""
        from repro.workloads import TraceGenerator, profile
        gen = TraceGenerator(profile("gzip"), seed=42)
        values = [rec.value for rec in gen.stream(15000)
                  if rec.writes_int_register and rec.value_width > 10]
        coverage = frequent_value_coverage(values, capacity=8)
        assert coverage > 0.25
