"""Tests for fault specification parsing and canonicalization."""

import pytest

from repro.faults import NULL_FAULTS, FaultSpec, FaultSpecError, PlaneKill
from repro.wires import WireClass


class TestFaultSpecBasics:
    def test_null_spec(self):
        assert NULL_FAULTS.is_null
        assert NULL_FAULTS.canonical() == ""

    def test_ber_spec_not_null(self):
        assert not FaultSpec(ber=1e-6).is_null

    def test_kill_spec_not_null(self):
        spec = FaultSpec(kills=(PlaneKill(WireClass.L),))
        assert not spec.is_null

    def test_unity_derate_is_null(self):
        spec = FaultSpec(derates=((WireClass.PW, 1.0),))
        assert spec.is_null

    def test_derate_for(self):
        spec = FaultSpec(derates=((WireClass.PW, 1.5),))
        assert spec.derate_for(WireClass.PW) == 1.5
        assert spec.derate_for(WireClass.B) == 1.0

    def test_hashable(self):
        a = FaultSpec(ber=1e-6, kills=(PlaneKill(WireClass.L),))
        b = FaultSpec(ber=1e-6, kills=(PlaneKill(WireClass.L),))
        assert hash(a) == hash(b) and a == b


class TestValidation:
    def test_rejects_ber_out_of_range(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(ber=1.0)
        with pytest.raises(FaultSpecError):
            FaultSpec(ber=-0.1)

    def test_rejects_negative_retry_budget(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(retry_budget=-1)

    def test_rejects_speedup_derate(self):
        with pytest.raises(FaultSpecError, match=">= 1.0"):
            FaultSpec(derates=((WireClass.B, 0.5),))

    def test_rejects_duplicate_derate(self):
        with pytest.raises(FaultSpecError, match="duplicate"):
            FaultSpec(derates=((WireClass.B, 1.1), (WireClass.B, 1.2)))

    def test_rejects_negative_kill_cycle(self):
        with pytest.raises(FaultSpecError):
            PlaneKill(WireClass.L, cycle=-1)

    def test_rejects_empty_kill_link(self):
        with pytest.raises(FaultSpecError):
            PlaneKill(WireClass.L, link="")


class TestParsing:
    def test_parse_empty(self):
        assert FaultSpec.parse("").is_null

    def test_parse_ber(self):
        assert FaultSpec.parse("ber=1e-6").ber == 1e-6

    def test_parse_kill(self):
        spec = FaultSpec.parse("kill=L@c0@2000")
        assert spec.kills == (
            PlaneKill(WireClass.L, link="c0", cycle=2000),
        )

    def test_parse_kill_wildcard(self):
        spec = FaultSpec.parse("kill=B@*@0")
        assert spec.kills[0].link == "*"
        assert spec.kills[0].cycle == 0

    def test_parse_derates(self):
        spec = FaultSpec.parse("derate=PW:1.2,B:1.1")
        assert spec.derate_for(WireClass.PW) == 1.2
        assert spec.derate_for(WireClass.B) == 1.1

    def test_parse_retries(self):
        assert FaultSpec.parse("retries=2").retry_budget == 2

    def test_parse_combined(self):
        spec = FaultSpec.parse(
            "ber=1e-6; kill=L@c0@2000; derate=PW:1.2; retries=3"
        )
        assert spec.ber == 1e-6
        assert len(spec.kills) == 1
        assert spec.retry_budget == 3

    def test_lowercase_wire_class_accepted(self):
        spec = FaultSpec.parse("kill=l@*@0")
        assert spec.kills[0].wire_class is WireClass.L

    def test_rejects_unknown_clause(self):
        with pytest.raises(FaultSpecError, match="unknown fault clause"):
            FaultSpec.parse("frobnicate=1")

    def test_rejects_missing_value(self):
        with pytest.raises(FaultSpecError, match="key=value"):
            FaultSpec.parse("ber")

    def test_rejects_unknown_wire_class(self):
        with pytest.raises(FaultSpecError, match="unknown wire class"):
            FaultSpec.parse("kill=Q@*@0")

    def test_rejects_malformed_kill(self):
        with pytest.raises(FaultSpecError, match="CLASS@link@cycle"):
            FaultSpec.parse("kill=L@c0")

    def test_rejects_bad_kill_cycle(self):
        with pytest.raises(FaultSpecError, match="integer"):
            FaultSpec.parse("kill=L@c0@soon")

    def test_rejects_malformed_derate(self):
        with pytest.raises(FaultSpecError, match="CLASS:factor"):
            FaultSpec.parse("derate=PW")

    def test_rejects_bad_ber(self):
        with pytest.raises(FaultSpecError, match="number"):
            FaultSpec.parse("ber=lots")


class TestCanonical:
    def test_round_trip(self):
        text = "ber=1e-06;kill=L@c0@2000;derate=PW:1.2;retries=3"
        spec = FaultSpec.parse(text)
        assert FaultSpec.parse(spec.canonical()) == spec

    def test_kill_order_normalized(self):
        a = FaultSpec.parse("kill=L@c0@100;kill=B@c1@50")
        b = FaultSpec.parse("kill=B@c1@50;kill=L@c0@100")
        assert a.canonical() == b.canonical()

    def test_default_retries_omitted(self):
        assert "retries" not in FaultSpec.parse("ber=1e-6").canonical()

    def test_non_default_retries_kept(self):
        assert "retries=2" in FaultSpec.parse("retries=2;ber=1e-6").canonical()
