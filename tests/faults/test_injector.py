"""Tests for the deterministic fault injector."""

import pytest

from repro.faults import FaultInjector, FaultSpec, PlaneKill
from repro.interconnect import ConfigError
from repro.interconnect.topology import CrossbarTopology
from repro.wires import CANONICAL_SPECS, WireClass


def make_injector(spec_text, seed=0):
    return FaultInjector(FaultSpec.parse(spec_text), seed=seed)


class TestScheduledKills:
    def test_wildcard_covers_every_channel(self):
        topology = CrossbarTopology(4)
        injector = make_injector("kill=L@*@100")
        kills = injector.scheduled_kills(topology.channels)
        assert len(kills) == len(topology.channels)
        assert all(cycle == 100 and wc is WireClass.L
                   for cycle, _, wc in kills)

    def test_named_link_covers_both_directions(self):
        topology = CrossbarTopology(4)
        injector = make_injector("kill=B@c0@5")
        kills = injector.scheduled_kills(topology.channels)
        assert sorted(ch for _, ch, _ in kills) == ["c0:in", "c0:out"]

    def test_unknown_link_raises_config_error(self):
        topology = CrossbarTopology(4)
        injector = make_injector("kill=L@c9@0")
        with pytest.raises(ConfigError, match="no such link"):
            injector.scheduled_kills(topology.channels)

    def test_kills_sorted_by_cycle(self):
        topology = CrossbarTopology(2)
        injector = make_injector("kill=L@c1@200;kill=B@c0@100")
        kills = injector.scheduled_kills(topology.channels)
        assert [cycle for cycle, _, _ in kills] == sorted(
            cycle for cycle, _, _ in kills
        )


class TestLatencyDerating:
    def test_identity_without_derate(self):
        injector = make_injector("ber=1e-9")
        assert injector.scaled_latency(WireClass.B, 4) == 4

    def test_derate_rounds_up(self):
        injector = make_injector("derate=B:1.3")
        assert injector.scaled_latency(WireClass.B, 3) == 4  # ceil(3.9)

    def test_derate_never_shrinks(self):
        injector = make_injector("derate=PW:1.0001")
        assert injector.scaled_latency(WireClass.PW, 2) >= 2


class TestCorruption:
    def test_zero_ber_never_corrupts(self):
        injector = make_injector("kill=L@*@0")
        assert not injector.corrupts(WireClass.B, "operand", 1, 72, 2, 0)

    def test_deterministic_across_instances(self):
        a = make_injector("ber=1e-3", seed=7)
        b = make_injector("ber=1e-3", seed=7)
        draws = [
            a.corrupts(WireClass.B, "operand", seq, 72, 2, 0)
            for seq in range(500)
        ]
        assert draws == [
            b.corrupts(WireClass.B, "operand", seq, 72, 2, 0)
            for seq in range(500)
        ]
        assert any(draws)  # 72*2 exposures at 0.8e-3 -> some corruption

    def test_seed_changes_draws(self):
        a = make_injector("ber=5e-4", seed=1)
        b = make_injector("ber=5e-4", seed=2)
        draws_a = [a.corrupts(WireClass.B, "operand", s, 72, 2, 0)
                   for s in range(2000)]
        draws_b = [b.corrupts(WireClass.B, "operand", s, 72, 2, 0)
                   for s in range(2000)]
        assert draws_a != draws_b

    def test_retry_attempt_gets_fresh_draw(self):
        injector = make_injector("ber=2e-3", seed=3)
        first = [injector.corrupts(WireClass.B, "operand", s, 72, 2, 0)
                 for s in range(300)]
        second = [injector.corrupts(WireClass.B, "operand", s, 72, 2, 1)
                  for s in range(300)]
        assert first != second

    def test_ber_scales_with_relative_delay(self):
        injector = make_injector("ber=1e-6")
        for wc in (WireClass.L, WireClass.B, WireClass.PW):
            expected = 1e-6 * CANONICAL_SPECS[wc].relative_delay
            assert injector.error_rate(wc) == pytest.approx(expected)
        # PW (1.2x delay) is more fragile than L (0.3x delay).
        assert injector.error_rate(WireClass.PW) > injector.error_rate(
            WireClass.L)

    def test_empirical_rate_tracks_probability(self):
        injector = make_injector("ber=1e-4", seed=11)
        bits, hops = 72, 2
        rate = injector.error_rate(WireClass.B)
        expected = 1.0 - (1.0 - rate) ** (bits * hops)
        trials = 4000
        hits = sum(
            injector.corrupts(WireClass.B, "operand", s, bits, hops, 0)
            for s in range(trials)
        )
        assert hits / trials == pytest.approx(expected, rel=0.5)
