"""Sweep the ten interconnect models over a workload mix and rank them.

Reproduces the Table 3 methodology at example scale: run each model,
normalize against Model I, and print the IPC / energy / ED^2 trade-off.

Run:  python examples/heterogeneous_sweep.py [benchmark ...]
"""

import sys

from repro import all_models, relative_metrics, simulate_model
from repro.harness import render_table

BENCHMARKS = ("gzip", "mesa", "swim")
INSTRUCTIONS = 4000
WARMUP = 1200


def main() -> None:
    benchmarks = tuple(sys.argv[1:]) or BENCHMARKS
    print(f"Sweeping Models I..X over {', '.join(benchmarks)} "
          f"({INSTRUCTIONS} instructions each)...\n")

    results = {}
    for m in all_models():
        results[m.name] = simulate_model(
            m, benchmarks=benchmarks,
            instructions=INSTRUCTIONS, warmup=WARMUP,
        )
        print(f"  Model {m.name:>4s} ({m.description}): "
              f"AM IPC {results[m.name].am_ipc:.3f}")

    baseline = results["I"]
    rows = []
    for m in all_models():
        rel = relative_metrics(
            results[m.name], baseline,
            description=m.description,
            relative_metal_area=m.relative_metal_area(),
        )
        rows.append((rel.ed2(0.20), [
            m.name, m.description, f"{rel.am_ipc:.2f}",
            f"{100 * rel.relative_dynamic:.0f}",
            f"{rel.processor_energy(0.20):.0f}",
            f"{rel.ed2(0.20):.1f}",
        ]))

    rows.sort(key=lambda pair: pair[0])
    print()
    print(render_table(
        ["Model", "Links", "IPC", "rel dyn", "E(20%)", "ED2(20%)"],
        [row for _, row in rows],
        title="Models ranked by ED^2 (20% interconnect share; "
              "Model I = 100):",
    ))
    best = rows[0][1]
    print(f"\nBest ED^2: Model {best[0]} ({best[1]}) -- the paper's "
          f"conclusion: heterogeneous mixes win at every metal budget.")


if __name__ == "__main__":
    main()
