"""Quickstart: simulate one benchmark on the paper's baseline and on a
heterogeneous interconnect, and compare.

Run:  python examples/quickstart.py
"""

from repro import model, simulate_benchmark

BENCHMARK = "gzip"
INSTRUCTIONS = 6000
WARMUP = 2000


def main() -> None:
    print(f"Simulating {BENCHMARK} on the 4-cluster partitioned "
          f"architecture ({INSTRUCTIONS} instructions)...\n")

    baseline = simulate_benchmark(
        model("I").config, BENCHMARK,
        instructions=INSTRUCTIONS, warmup=WARMUP,
    )
    hetero = simulate_benchmark(
        model("VII").config, BENCHMARK,
        instructions=INSTRUCTIONS, warmup=WARMUP,
    )

    print(f"{'':28s} {'Model I':>12s} {'Model VII':>12s}")
    print(f"{'link composition':28s} {'144 B':>12s} {'144 B + 36 L':>12s}")
    print(f"{'IPC':28s} {baseline.ipc:12.3f} {hetero.ipc:12.3f}")
    print(f"{'cycles':28s} {baseline.cycles:12d} {hetero.cycles:12d}")
    print(f"{'interconnect dyn energy':28s} "
          f"{baseline.interconnect_dynamic:12.0f} "
          f"{hetero.interconnect_dynamic:12.0f}")

    extra = hetero.extra_stats()
    print(f"\nHeterogeneous-interconnect mechanisms at work (Model VII):")
    print(f"  loads started early from partial addresses: "
          f"{extra['early_ram_starts']:.0f}")
    print(f"  false LS-bit dependences: "
          f"{extra['false_dependences']:.0f} of "
          f"{extra['loads_disambiguated']:.0f} loads")
    print(f"  narrow-width predictor coverage: "
          f"{extra['narrow_coverage']:.1%}")
    gain = (hetero.ipc / baseline.ipc - 1) * 100
    print(f"\nL-Wire layer IPC gain on {BENCHMARK}: {gain:+.1f}% "
          f"(paper reports +4.2% on the suite average)")


if __name__ == "__main__":
    main()
