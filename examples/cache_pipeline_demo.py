"""The accelerated cache pipeline in isolation (Section 4 of the paper).

Drives the LSQ + cache pipeline directly -- no full processor -- to show
how sending LS address bits ahead on L-Wires overlaps RAM access with
the MS-bit transfer, and what LS-bit aliasing (false dependences) costs.

Run:  python examples/cache_pipeline_demo.py
"""

import random

from repro.core.instruction import DynInstr
from repro.memory import CachePipeline, LoadStoreQueue, MemoryHierarchy
from repro.workloads.trace import InstructionRecord, OpClass

#: L-Wire vs. B-Wire crossbar latencies (Table 2).
L_LATENCY, B_LATENCY = 1, 2


def make_load(seq, addr):
    rec = InstructionRecord(pc=0x400000 + 4 * seq, op=OpClass.LOAD,
                            dest=5, srcs=(1,), addr=addr)
    return DynInstr(seq, rec)


def run_pipeline(partial: bool, addresses, issue_gap: int = 2):
    """Feed a stream of loads; returns average load-ready latency."""
    hierarchy = MemoryHierarchy()
    pipeline = CachePipeline(hierarchy)
    done = {}
    lsq = LoadStoreQueue(pipeline, size=64, partial_enabled=partial,
                         load_done=lambda i, c, lvl: done.__setitem__(i.seq, c))
    # Retire finished loads so the LSQ never fills in this open loop.
    inner_done = lsq.load_done

    def _done_and_release(instr, cycle, level):
        inner_done(instr, cycle, level)
        lsq.release(instr)

    lsq.load_done = _done_and_release
    # Warm the L1 so the comparison isolates pipeline timing.
    for addr in addresses:
        hierarchy.l1.access(addr)
        hierarchy.tlb.access(addr)

    issue_cycles = {}
    for seq, addr in enumerate(addresses):
        instr = make_load(seq, addr)
        lsq.allocate(instr)
        issued = seq * issue_gap
        issue_cycles[seq] = issued
        if partial:
            # LS bits race ahead on L-Wires; MS bits follow on B-Wires.
            lsq.on_partial_address(instr, addr, issued + L_LATENCY)
            lsq.on_full_address(instr, addr, issued + B_LATENCY + 4)
        else:
            lsq.on_full_address(instr, addr, issued + B_LATENCY + 4)
    latencies = [done[s] - issue_cycles[s] for s in done]
    return sum(latencies) / len(latencies), lsq


def main() -> None:
    rng = random.Random(42)
    addresses = [0x1000_0000 + 8 * rng.randrange(4096) for _ in range(400)]

    base_lat, _ = run_pipeline(partial=False, addresses=addresses)
    fast_lat, lsq = run_pipeline(partial=True, addresses=addresses)

    print("Accelerated cache pipeline (loads only, warm L1):")
    print(f"  baseline pipeline:     average load-ready latency "
          f"{base_lat:5.1f} cycles")
    print(f"  partial-address (L-Wire) pipeline: {fast_lat:5.1f} cycles")
    print(f"  saved per load:        {base_lat - fast_lat:5.1f} cycles")
    print(f"  early RAM starts:      {lsq.early_ram_starts} of "
          f"{len(addresses)} loads")

    # Now with interleaved stores to show disambiguation and aliasing.
    print("\nWith interleaved stores (LS-bit disambiguation):")
    hierarchy = MemoryHierarchy()
    pipeline = CachePipeline(hierarchy)
    # Sized to hold the whole demo stream (a real pipeline releases
    # entries at commit; see repro.core.processor).
    lsq = LoadStoreQueue(pipeline, size=512, partial_enabled=True,
                         load_done=lambda i, c, lvl: None)
    window = []
    seq = 0
    for i in range(300):
        # A realistic address spread; shrinking this region raises the
        # LS-bit alias rate (only 8 word-address bits are compared).
        addr = 0x1000_0000 + 8 * rng.randrange(65536)
        if i % 3 == 0:
            rec = InstructionRecord(pc=0x500000 + 4 * seq,
                                    op=OpClass.STORE, srcs=(1, 2),
                                    addr=addr)
            st = DynInstr(seq, rec)
            lsq.allocate(st)
            lsq.on_partial_address(st, addr, 2 * i + 1)
            lsq.on_full_address(st, addr, 2 * i + 4)
            lsq.on_store_data(st, 2 * i + 4)
            window.append(st)
        else:
            ld = make_load(seq, addr)
            lsq.allocate(ld)
            lsq.on_partial_address(ld, addr, 2 * i + 1)
            lsq.on_full_address(ld, addr, 2 * i + 4)
            window.append(ld)
        seq += 1
        # Retire old entries, as commit would: a real LSQ holds a few
        # dozen live stores, which bounds the alias probability.
        while len(window) > 24:
            lsq.release(window.pop(0))

    print(f"  loads disambiguated:   {lsq.loads_disambiguated}")
    print(f"  store->load forwards:  {lsq.true_forwards}")
    print(f"  false LS-bit aliases:  {lsq.false_dependences} "
          f"({lsq.false_dependence_rate:.1%}; paper bound: <9%)")


if __name__ == "__main__":
    main()
