"""Leakage-aware plane power management (DESIGN.md section 15).

Sweeps the heterogeneous Model X under a ladder of gating policies --
always-on, lazy idle countdowns, traffic-EWMA hysteresis -- and prints
the leakage/IPC trade-off, the per-plane power-state residency, and the
gate/wake telemetry stream for the most aggressive policy.

Run:  python examples/plane_gating_study.py
"""

from repro.core.models import model
from repro.core.simulation import build_processor, simulate_benchmark
from repro.telemetry import EventKind, RingBufferSink, Telemetry

MODEL = "X"           # 144 B + 288 PW + 36 L: three gateable-ish planes
BENCHMARK = "gzip"
INSTRUCTIONS, WARMUP = 4000, 1000

POLICIES = (
    ("always-on", None),
    ("drowsy late", "idle:drowsy=128,gate=512"),
    ("drowsy early", "idle:drowsy=32,gate=128"),
    ("ewma", "ewma:halflife=64,thr=0.5"),
)


def main() -> None:
    config = model(MODEL).config

    print(f"model {MODEL} / {BENCHMARK}, {INSTRUCTIONS} instructions")
    print()
    print(f"{'policy':<14} {'IPC':>6} {'leakage':>9} {'wakes':>6} "
          f"{'gated':>6}")
    base_leak = None
    for label, gating in POLICIES:
        run = simulate_benchmark(
            config, BENCHMARK, instructions=INSTRUCTIONS,
            warmup=WARMUP, gating=gating,
        )
        extra = run.extra_stats()
        leak = run.interconnect_leakage
        if base_leak is None:
            base_leak = leak
        print(f"{label:<14} {run.ipc:>6.3f} "
              f"{100 * leak / base_leak:>8.0f}% "
              f"{extra.get('plane_wakes', 0):>6.0f} "
              f"{extra.get('gated_wire_cycle_share', 0):>6.1%}")

    # Per-plane residency under the aggressive policy: B (the bulk
    # plane) must stay active; PW and L cycle through drowsy/gated.
    print()
    print("per-plane power-state residency (idle:drowsy=32,gate=128):")
    cpu = build_processor(config, BENCHMARK,
                          gating="idle:drowsy=32,gate=128")
    stats = cpu.run(INSTRUCTIONS, warmup=WARMUP)
    for row in cpu.network.power.power_report(stats.cycles):
        total = max(stats.cycles, 1)
        print(f"  {row.link:<8} {row.wire_class.value:>2}-plane "
              f"({row.wires:>3} wires): "
              f"active {row.active_cycles / total:>6.1%}  "
              f"drowsy {row.drowsy_cycles / total:>6.1%}  "
              f"gated {row.gated_cycles / total:>6.1%}  "
              f"wakes {row.wakes}")

    # The same decisions as telemetry: every gate-down and wake-up is
    # an event, so traces show exactly when and why a plane slept.
    telemetry = Telemetry(enabled=True,
                          sink=RingBufferSink(capacity=None))
    simulate_benchmark(config, BENCHMARK, instructions=INSTRUCTIONS,
                       warmup=WARMUP, gating="idle:drowsy=32,gate=128",
                       telemetry=telemetry)
    events = [e for e in telemetry.events()
              if e.kind in (EventKind.PLANE_GATED,
                            EventKind.PLANE_WOKEN)]
    print()
    print(f"power telemetry: {len(events)} gate/wake events; first 6:")
    for event in events[:6]:
        attrs = dict(event.attrs)
        what = (f"-> {attrs['state']}"
                if event.kind is EventKind.PLANE_GATED
                else f"wake from {attrs['from']}")
        print(f"  cycle {attrs.get('cycle', event.cycle):>6} "
              f"{attrs['link']:<8} {attrs['plane']:>2}-plane  {what}")


if __name__ == "__main__":
    main()
