"""Inspect interconnect hot spots with the utilization report.

Shows where traffic concentrates on the 4-cluster crossbar (the cache
links) and how the PW plane of a heterogeneous link absorbs bursts --
the congestion the paper's load-imbalance criterion reacts to.

Run:  python examples/network_utilization.py
"""

from repro import model
from repro.core.simulation import build_processor
from repro.harness import render_table


def report_for(model_name: str, benchmark: str = "gzip"):
    cpu = build_processor(model(model_name).config, benchmark)
    stats = cpu.run(5000, warmup=1500)
    return cpu, stats


def main() -> None:
    for model_name in ("I", "V"):
        cpu, stats = report_for(model_name)
        rows = []
        for r in cpu.network.utilization_report(cycles=stats.cycles)[:8]:
            rows.append([
                r.channel, f"{r.wire_class.value}-Wires",
                r.capacity_bits, r.grants,
                f"{r.utilization:.1%}",
            ])
        print(render_table(
            ["Channel", "Plane", "bits/cycle", "grants", "utilization"],
            rows,
            title=(f"Model {model_name} "
                   f"({model(model_name).description}), gzip, "
                   f"IPC {stats.ipc:.2f} -- busiest channels:"),
        ))
        print()
    print("On Model V the PW plane drains store data and bursts, "
          "lowering the B plane's queueing -- the effect behind the "
          "paper's contention-reduction claim for PW-Wires.")


if __name__ == "__main__":
    main()
