"""Narrow bit-width operands: detection, prediction, and L-Wire payoff.

Walks a synthetic benchmark's register traffic, trains the paper's
8K-counter width predictor, and shows the claims of Section 4/5.3:
~14% of register traffic is narrow, the predictor covers ~95% of it,
and integer-heavy benchmarks benefit more from narrow L-Wire transfers.

Run:  python examples/narrow_operand_study.py
"""

from repro import model, simulate_benchmark
from repro.harness import render_table
from repro.operands import NarrowWidthPredictor
from repro.workloads import TraceGenerator, profile

INSTRUCTIONS = 5000
WARMUP = 1500


def offline_predictor_study(benchmark: str) -> tuple:
    """Train a width predictor on the raw stream (no timing)."""
    gen = TraceGenerator(profile(benchmark), seed=42)
    predictor = NarrowWidthPredictor()
    narrow = total = 0
    for rec in gen.stream(30000):
        if rec.writes_int_register:
            total += 1
            narrow += rec.is_narrow
            predictor.predict_and_train(rec.pc, rec.is_narrow)
    return narrow / max(1, total), predictor


def main() -> None:
    rows = []
    for bench in ("gzip", "crafty", "parser", "swim", "applu"):
        frac, predictor = offline_predictor_study(bench)
        rows.append([
            bench, f"{frac:.1%}",
            f"{predictor.coverage:.1%}",
            f"{predictor.false_narrow_rate:.1%}",
        ])
    print(render_table(
        ["Benchmark", "narrow int results", "predictor coverage",
         "false narrow"],
        rows,
        title="Width-predictor study (paper: 95% coverage, 2% false "
              "narrows; ~14% of register traffic narrow):",
    ))

    print("\nTiming impact of the narrow-operand mechanism "
          "(Model VII vs Model I):\n")
    rows = []
    for bench in ("gzip", "swim"):
        base = simulate_benchmark(model("I").config, bench,
                                  instructions=INSTRUCTIONS, warmup=WARMUP)
        het = simulate_benchmark(model("VII").config, bench,
                                 instructions=INSTRUCTIONS, warmup=WARMUP)
        extra = het.extra_stats()
        share = (extra["operand_narrow"]
                 / max(1.0, extra["operand_transfers"]))
        rows.append([
            bench, f"{share:.1%}",
            f"{base.ipc:.3f}", f"{het.ipc:.3f}",
            f"{(het.ipc / base.ipc - 1) * 100:+.1f}%",
        ])
    print(render_table(
        ["Benchmark", "narrow reg traffic", "IPC (I)", "IPC (VII)",
         "gain"],
        rows,
    ))
    print("\nInteger codes (gzip) carry more narrow traffic than FP "
          "codes (swim), as the paper notes.")


if __name__ == "__main__":
    main()
