"""Define a custom workload profile and scale it across cluster counts.

Shows the public workload API: a ``WorkloadProfile`` fully describes a
synthetic program (mix, dependences, branches, memory behaviour), and
any profile can be run on any machine/interconnect combination.

Run:  python examples/custom_workload.py
"""

from repro import ProcessorConfig, model
from repro.core.processor import ClusteredProcessor
from repro.harness import render_table
from repro.workloads import TraceGenerator, WorkloadProfile

#: A pointer-chasing, branchy "database-like" workload.
DATABASE = WorkloadProfile(
    name="dbwalk",
    load_frac=0.30, store_frac=0.10,
    pointer_frac=0.50, stream_frac=0.15, stack_frac=0.20,
    working_set_kb=4096, pointer_hot_bytes=64 * 1024,
    dep_locality=0.85, hard_branch_frac=0.08,
    block_size_range=(4, 8), narrow_static_frac=0.30,
)

#: A regular, wide-loop "stencil-like" FP workload.
STENCIL = WorkloadProfile(
    name="stencil",
    load_frac=0.30, store_frac=0.14,
    fp_frac=0.55, fpmul_frac=0.22,
    stream_frac=0.80, pointer_frac=0.02, stack_frac=0.10,
    working_set_kb=8192, dep_locality=0.45,
    block_size_range=(10, 16), loop_frac=0.6, mean_loop_trips=80.0,
)


def run(profile: WorkloadProfile, clusters: int, model_name: str) -> float:
    gen = TraceGenerator(profile, seed=42)
    cpu = ClusteredProcessor(
        ProcessorConfig(num_clusters=clusters),
        model(model_name).config,
        gen.stream_forever(),
    )
    cpu.prewarm(gen.data_footprint())
    stats = cpu.run(4000, warmup=1200)
    return stats.ipc


def main() -> None:
    rows = []
    for profile in (DATABASE, STENCIL):
        ipc4 = run(profile, 4, "I")
        ipc16 = run(profile, 16, "I")
        ipc4h = run(profile, 4, "VII")
        rows.append([
            profile.name,
            f"{ipc4:.3f}", f"{ipc16:.3f}",
            f"{(ipc16 / ipc4 - 1) * 100:+.0f}%",
            f"{(ipc4h / ipc4 - 1) * 100:+.1f}%",
        ])
    print(render_table(
        ["Workload", "IPC 4cl", "IPC 16cl", "16cl gain", "L-Wire gain"],
        rows,
        title="Custom workloads across machines "
              "(Model I baseline, Model VII for the L-Wire column):",
    ))
    print("\nCluster scaling and L-Wire gains differ sharply between "
          "the two profiles -- the kind of behaviour split the paper's "
          "Section 5 explores across SPEC2k. (The memory-bound pointer "
          "chaser gains cluster-level memory parallelism; the FP "
          "stencil leans on the L-Wire cache pipeline.)")


if __name__ == "__main__":
    main()
