"""Frequent-value locality and L-Wire compaction (extension).

Measures value locality in the synthetic benchmarks (after Yang et al.,
whom the paper cites for data compaction), then shows the online
frequent-value table covering wide register traffic that the 10-bit
narrow mechanism cannot.

Run:  python examples/frequent_value_study.py
"""

from dataclasses import replace

from repro.core.config import InterconnectConfig, wire_counts
from repro.core.simulation import build_processor
from repro.harness import render_table
from repro.interconnect.selection import PolicyFlags
from repro.operands import FrequentValueTable, frequent_value_coverage
from repro.workloads import TraceGenerator, profile


def offline(bench: str):
    gen = TraceGenerator(profile(bench), seed=42)
    wide = [rec.value for rec in gen.stream(20000)
            if rec.writes_int_register and rec.value_width > 10]
    table = FrequentValueTable()
    hits = 0
    for value in wide:
        if table.contains(value):
            hits += 1
        table.observe(value)
    return (frequent_value_coverage(wide, 8),
            hits / max(1, len(wide)), len(wide))


def main() -> None:
    rows = []
    for bench in ("gzip", "crafty", "gap", "swim"):
        oracle, online, n = offline(bench)
        rows.append([bench, n, f"{oracle:.1%}", f"{online:.1%}"])
    print(render_table(
        ["Benchmark", "wide results", "top-8 coverage (oracle)",
         "online table hit rate"],
        rows,
        title="Value locality of wide integer results "
              "(Yang et al. report ~50% for SPEC95-Int):",
    ))

    print("\nTiming effect on Model VII (int benchmark):")
    flags_on = replace(PolicyFlags(), lwire_frequent_value=True)
    for label, flags in (("narrow only", PolicyFlags()),
                         ("narrow + frequent values", flags_on)):
        icfg = InterconnectConfig(wires=wire_counts(B=144, L=36),
                                  flags=flags)
        cpu = build_processor(icfg, "gzip")
        stats = cpu.run(5000, warmup=1500)
        fv = cpu.network.selector.fv_transfers
        print(f"  {label:26s} IPC {stats.ipc:.3f}   "
              f"fv transfers {fv}")


if __name__ == "__main__":
    main()
