"""Explore the wire design space of Section 2 with the RC models.

Shows the three knobs the paper builds its heterogeneous interconnect
from: wire width/spacing (latency vs. bandwidth), repeater size/spacing
(latency vs. energy), and transmission lines (the extreme point).

Run:  python examples/wire_designer.py [--node NM]

``--node`` moves the study to another technology node (45 down to
8 nm): the geometry shrinks with the node's half-pitch and the link
length scales with the die (see repro.wires.scaling).
"""

import argparse

from repro.harness import render_table
from repro.wires import (
    SUPPORTED_NODES,
    TransmissionLineSpec,
    clock_frequency_ghz,
    link_length_m,
    minimum_width_geometry,
    optimal_repeater_config,
    power_optimal_repeater_config,
    repeated_wire_delay,
    repeated_wire_dynamic_energy,
    supply_voltage,
    transmission_line_speedup,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--node", type=int, choices=SUPPORTED_NODES, default=45,
        help="technology node in nm (default: 45)",
    )
    args = parser.parse_args()
    tech_nm = float(args.node)
    length = link_length_m(args.node)

    base = minimum_width_geometry(tech_nm)
    base_cfg = optimal_repeater_config(base)
    base_delay = repeated_wire_delay(base, base_cfg, length)
    base_energy = repeated_wire_dynamic_energy(base, base_cfg, length)

    print(f"Reference: minimum-pitch wire at {tech_nm:.0f} nm "
          f"(vdd {supply_voltage(args.node):.2f} V, "
          f"clock {clock_frequency_ghz(args.node):.2f} GHz), "
          f"{length * 1e3:.1f} mm link, delay-optimal repeaters\n")

    # Knob 1: width and spacing.
    rows = []
    for factor in (1, 2, 4, 8):
        geom = base.scaled(width_factor=factor, spacing_factor=factor)
        cfg = optimal_repeater_config(geom)
        delay = repeated_wire_delay(geom, cfg, length)
        energy = repeated_wire_dynamic_energy(geom, cfg, length)
        tracks = 1.0 / factor
        rows.append([
            f"{factor}x", f"{delay / base_delay:.2f}",
            f"{energy / base_energy:.2f}", f"{tracks:.3f}",
        ])
    print(render_table(
        ["Width/spacing", "Rel delay", "Rel energy", "Rel wires/area"],
        rows,
        title="Knob 1 -- wider wires are faster but fewer fit "
              "(L-Wires use 8x):",
    ))

    # Knob 2: repeater sizing.
    rows = []
    for penalty in (1.0, 1.1, 1.2, 1.5, 2.0):
        cfg = power_optimal_repeater_config(base, delay_penalty=penalty)
        delay = repeated_wire_delay(base, cfg, length)
        energy = repeated_wire_dynamic_energy(base, cfg, length)
        rows.append([
            f"{penalty:.1f}x", f"{delay / base_delay:.2f}",
            f"{energy / base_energy:.2f}",
            f"{cfg.size / base_cfg.size:.2f}",
            f"{cfg.spacing / base_cfg.spacing:.2f}",
        ])
    print("\n" + render_table(
        ["Delay budget", "Rel delay", "Rel energy", "Rel size",
         "Rel spacing"],
        rows,
        title="Knob 2 -- smaller, sparser repeaters trade delay for "
              "energy (PW-Wires use the 1.2x point):",
    ))

    # Knob 3: transmission lines.
    wide = base.scaled(8.0, 8.0)
    wide_cfg = optimal_repeater_config(wide)
    wide_delay = repeated_wire_delay(wide, wide_cfg, length)
    line = TransmissionLineSpec()
    speedup = transmission_line_speedup(wide_delay, line, length)
    print(f"\nKnob 3 -- transmission line vs. the 8x-wide RC wire: "
          f"{speedup:.1f}x faster")
    print(f"  (ripple velocity {line.propagation_velocity() / 2.998e8:.2f}c;"
          f" the paper restricts evaluation to RC L-Wires and treats"
          f" transmission lines as future work)")


if __name__ == "__main__":
    main()
