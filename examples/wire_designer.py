"""Explore the wire design space of Section 2 with the RC models.

Shows the three knobs the paper builds its heterogeneous interconnect
from: wire width/spacing (latency vs. bandwidth), repeater size/spacing
(latency vs. energy), and transmission lines (the extreme point).

Run:  python examples/wire_designer.py
"""

from repro.harness import render_table
from repro.wires import (
    TransmissionLineSpec,
    minimum_width_geometry,
    optimal_repeater_config,
    power_optimal_repeater_config,
    repeated_wire_delay,
    repeated_wire_dynamic_energy,
    transmission_line_speedup,
)

LENGTH = 10e-3  # a 10 mm global wire
TECH_NM = 45.0


def main() -> None:
    base = minimum_width_geometry(TECH_NM)
    base_cfg = optimal_repeater_config(base)
    base_delay = repeated_wire_delay(base, base_cfg, LENGTH)
    base_energy = repeated_wire_dynamic_energy(base, base_cfg, LENGTH)

    print(f"Reference: minimum-pitch wire at {TECH_NM:.0f} nm, "
          f"{LENGTH * 1e3:.0f} mm, delay-optimal repeaters\n")

    # Knob 1: width and spacing.
    rows = []
    for factor in (1, 2, 4, 8):
        geom = base.scaled(width_factor=factor, spacing_factor=factor)
        cfg = optimal_repeater_config(geom)
        delay = repeated_wire_delay(geom, cfg, LENGTH)
        energy = repeated_wire_dynamic_energy(geom, cfg, LENGTH)
        tracks = 1.0 / factor
        rows.append([
            f"{factor}x", f"{delay / base_delay:.2f}",
            f"{energy / base_energy:.2f}", f"{tracks:.3f}",
        ])
    print(render_table(
        ["Width/spacing", "Rel delay", "Rel energy", "Rel wires/area"],
        rows,
        title="Knob 1 -- wider wires are faster but fewer fit "
              "(L-Wires use 8x):",
    ))

    # Knob 2: repeater sizing.
    rows = []
    for penalty in (1.0, 1.1, 1.2, 1.5, 2.0):
        cfg = power_optimal_repeater_config(base, delay_penalty=penalty)
        delay = repeated_wire_delay(base, cfg, LENGTH)
        energy = repeated_wire_dynamic_energy(base, cfg, LENGTH)
        rows.append([
            f"{penalty:.1f}x", f"{delay / base_delay:.2f}",
            f"{energy / base_energy:.2f}",
            f"{cfg.size / base_cfg.size:.2f}",
            f"{cfg.spacing / base_cfg.spacing:.2f}",
        ])
    print("\n" + render_table(
        ["Delay budget", "Rel delay", "Rel energy", "Rel size",
         "Rel spacing"],
        rows,
        title="Knob 2 -- smaller, sparser repeaters trade delay for "
              "energy (PW-Wires use the 1.2x point):",
    ))

    # Knob 3: transmission lines.
    wide = base.scaled(8.0, 8.0)
    wide_cfg = optimal_repeater_config(wide)
    wide_delay = repeated_wire_delay(wide, wide_cfg, LENGTH)
    line = TransmissionLineSpec()
    speedup = transmission_line_speedup(wide_delay, line, LENGTH)
    print(f"\nKnob 3 -- transmission line vs. the 8x-wide RC wire: "
          f"{speedup:.1f}x faster")
    print(f"  (ripple velocity {line.propagation_velocity() / 2.998e8:.2f}c;"
          f" the paper restricts evaluation to RC L-Wires and treats"
          f" transmission lines as future work)")


if __name__ == "__main__":
    main()
